"""repro.analysis — the project's own static contract checker (repro-lint).

The repo's guarantees (bit-exact sweep replay, the ``repro.engine``
facade, policy-salted memo keys, monotonic-clock latency, Prometheus
naming, picklable pool workers) are invariants no off-the-shelf linter
can know about.  This package encodes each one as a rule
(``RL001``–``RL014``): the syntactic catalog runs on single-file AST
walks, and the flow rules (RL012–RL014) run on top of a whole-program
import graph (:mod:`repro.analysis.graph`) and an intraprocedural taint
dataflow (:mod:`repro.analysis.dataflow`).  An incremental cache
(:mod:`repro.analysis.cache`) memoizes per-file findings by content and
dependency hashes, and ``repro-cps lint`` surfaces the whole thing with
text/JSON/SARIF reporters, ``--jobs`` fan-out, and ``--changed`` diff
scoping.

Typical use::

    from repro.analysis import lint_paths, render_text

    findings = lint_paths(["src"])
    print(render_text(findings))

Importing this package registers the full rule catalog (the imports of
:mod:`repro.analysis.rules` and :mod:`repro.analysis.flowrules` below
are the registration side effect, the same pattern
:mod:`repro.core.schemes` uses for solver schemes).
"""

from __future__ import annotations

from repro.analysis import flowrules as _flowrules  # noqa: F401  (registers RL012–RL014)
from repro.analysis import rules as _rules  # noqa: F401  (registers RL001–RL011)
from repro.analysis.cache import DEFAULT_CACHE_PATH, LintCache, catalog_fingerprint
from repro.analysis.dataflow import ModuleDataflow
from repro.analysis.engine import (
    PARSE_ERROR_ID,
    FileContext,
    LintRun,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_project,
    lint_source,
    path_category,
)
from repro.analysis.findings import Finding
from repro.analysis.graph import ModuleInfo, ProjectGraph, build_graph, module_info
from repro.analysis.registry import (
    Rule,
    get_rule,
    register_rule,
    resolve_rules,
    rule_ids,
)
from repro.analysis.reporters import render_json, render_sarif, render_text

__all__ = [
    "DEFAULT_CACHE_PATH",
    "PARSE_ERROR_ID",
    "FileContext",
    "Finding",
    "LintCache",
    "LintRun",
    "ModuleDataflow",
    "ModuleInfo",
    "ProjectGraph",
    "Rule",
    "build_graph",
    "catalog_fingerprint",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "module_info",
    "path_category",
    "register_rule",
    "render_json",
    "render_sarif",
    "render_text",
    "resolve_rules",
    "rule_ids",
]
