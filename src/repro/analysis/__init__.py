"""repro.analysis — the project's own static contract checker (repro-lint).

The repo's guarantees (bit-exact sweep replay, the ``repro.engine``
facade, monotonic-clock latency, Prometheus naming, picklable pool
workers) are invariants no off-the-shelf linter can know about.  This
package encodes each one as an AST rule (``RL001``–``RL009``), run by a
single-walk engine with inline line-scoped suppressions and text/JSON
reporters, surfaced as ``repro-cps lint``.

Typical use::

    from repro.analysis import lint_paths, render_text

    findings = lint_paths(["src"])
    print(render_text(findings))

Importing this package registers the full rule catalog (the import of
:mod:`repro.analysis.rules` below is the registration side effect, the
same pattern :mod:`repro.core.schemes` uses for solver schemes).
"""

from __future__ import annotations

from repro.analysis import rules as _rules  # noqa: F401  (registers RL001–RL009)
from repro.analysis.engine import (
    PARSE_ERROR_ID,
    FileContext,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    Rule,
    get_rule,
    register_rule,
    resolve_rules,
    rule_ids,
)
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "PARSE_ERROR_ID",
    "FileContext",
    "Finding",
    "Rule",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_json",
    "render_text",
    "resolve_rules",
    "rule_ids",
]
