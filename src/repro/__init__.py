"""repro — Optimal Cache Partition-Sharing (ICPP 2015), reproduced in Python.

The package implements the paper end to end:

* :mod:`repro.workloads` — traces and synthetic program generators;
* :mod:`repro.locality` — the Higher Order Theory of Locality (§III):
  reuse times, average footprint, fill time, miss-ratio curves;
* :mod:`repro.composition` — footprint composition and the Natural Cache
  Partition (§IV, §V-A);
* :mod:`repro.cachesim` — LRU / set-associative / shared / partitioned
  cache simulators (the validation substrate, §VII-C);
* :mod:`repro.core` — the contribution: optimal-partitioning DP (§V-B),
  baseline fairness optimization (§VI), STTW, partition-sharing
  enumeration and search-space combinatorics (§II);
* :mod:`repro.engine` — the solving layer everything dispatches through:
  the :class:`~repro.engine.Scheme` registry (the six paper schemes,
  registered once), the shared :class:`~repro.engine.FoldCache`
  min-plus/DP memoization, and the :class:`~repro.engine.GroupSolver`
  facade;
* :mod:`repro.experiments` — the full §VII evaluation (Table I,
  Figures 5–7, NPA validation);
* :mod:`repro.online` — the streaming counterpart: incremental sampled
  profiling, memoized re-solves, and the epoch-driven allocation
  controller behind ``repro-cps serve``.

Quickstart::

    from repro import workloads, locality
    from repro.engine import GroupSolver

    traces = [workloads.make_program(n, 4096) for n in ("lbm", "mcf", "namd", "povray")]
    fps = [locality.average_footprint(t) for t in traces]
    mrcs = [locality.MissRatioCurve.from_footprint(fp, 4096).resample(16, 256) for fp in fps]
    ev = GroupSolver(n_units=256, unit_blocks=16).evaluate(mrcs, fps)
    print(ev.outcomes["optimal"].allocation)
"""

from repro import (
    cachesim,
    composition,
    core,
    engine,
    experiments,
    locality,
    online,
    workloads,
)

__version__ = "1.1.0"

__all__ = [
    "cachesim",
    "composition",
    "core",
    "engine",
    "experiments",
    "locality",
    "online",
    "workloads",
    "__version__",
]
