"""Partitioned-cache simulation.

Under strict partitioning each program runs in a private fully-associative
LRU region, so the simulation decomposes into independent solo runs at the
allocated sizes.  Used to measure the true performance of any partition the
optimizers propose, and to check the Natural Cache Partition's defining
property (same miss ratio as sharing, §V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cachesim.lru import lru_miss_counts
from repro.workloads.trace import Trace

__all__ = ["PartitionedRunResult", "simulate_partitioned"]


@dataclass(frozen=True)
class PartitionedRunResult:
    """Per-program outcome of running in private partitions."""

    names: tuple[str, ...]
    allocation: np.ndarray
    accesses: np.ndarray
    misses: np.ndarray

    def miss_ratios(self) -> np.ndarray:
        return self.misses / np.maximum(self.accesses, 1)

    def group_miss_ratio(self) -> float:
        return float(self.misses.sum()) / float(max(self.accesses.sum(), 1))


def simulate_partitioned(
    traces: Sequence[Trace],
    allocation: Sequence[int] | np.ndarray,
    *,
    include_cold: bool = False,
) -> PartitionedRunResult:
    """Run each program in its own LRU partition of ``allocation[i]`` blocks.

    A zero-block partition makes every access of that program a miss.
    """
    alloc = np.asarray(allocation, dtype=np.int64)
    if alloc.size != len(traces):
        raise ValueError("allocation length must match the number of programs")
    if alloc.size and alloc.min() < 0:
        raise ValueError("allocations must be non-negative")
    misses = np.empty(len(traces), dtype=np.int64)
    accesses = np.empty(len(traces), dtype=np.int64)
    for i, (tr, c) in enumerate(zip(traces, alloc.tolist())):
        accesses[i] = len(tr)
        if c == 0:
            misses[i] = len(tr) if include_cold else len(tr) - tr.data_size
        else:
            misses[i] = lru_miss_counts(tr, np.array([c]), include_cold=include_cold)[0]
    return PartitionedRunResult(
        names=tuple(t.name for t in traces),
        allocation=alloc,
        accesses=accesses,
        misses=misses,
    )
