"""Fully-associative LRU cache simulation.

Two implementations:

* :func:`lru_miss_counts` — exact miss counts for a whole vector of cache
  sizes in one pass, via stack distances (fast path);
* :class:`LRUCache` — a step-by-step simulator returning the per-access
  hit/miss outcome, used as an independent reference in tests and by the
  shared-cache simulator for per-program attribution.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.cachesim.stack import COLD, stack_distances
from repro.workloads.trace import Trace

__all__ = ["LRUCache", "lru_miss_counts", "lru_miss_ratio"]


def lru_miss_counts(
    trace: Trace | np.ndarray,
    cache_sizes: np.ndarray,
    *,
    include_cold: bool = True,
) -> np.ndarray:
    """Exact fully-associative LRU miss counts at each size in ``cache_sizes``.

    A reuse access misses at size ``c`` iff its stack distance exceeds
    ``c``; first accesses always miss (cold) and are counted unless
    ``include_cold`` is ``False`` (the HOTL steady-state convention).
    """
    sizes = np.asarray(cache_sizes, dtype=np.int64)
    if sizes.size and sizes.min() < 0:
        raise ValueError("cache sizes must be non-negative")
    dist = stack_distances(trace)
    reuse = dist[dist != COLD]
    n_cold = dist.size - reuse.size
    # misses(c) = #(reuse distances > c)
    sorted_reuse = np.sort(reuse)
    misses = reuse.size - np.searchsorted(sorted_reuse, sizes, side="right")
    misses = misses.astype(np.int64)
    if include_cold:
        misses += n_cold
    return misses


def lru_miss_ratio(
    trace: Trace | np.ndarray,
    cache_size: int,
    *,
    include_cold: bool = True,
) -> float:
    """Miss ratio of one LRU cache size (convenience wrapper)."""
    n = len(trace) if isinstance(trace, Trace) else np.asarray(trace).size
    if n == 0:
        return 0.0
    misses = lru_miss_counts(trace, np.array([cache_size]), include_cold=include_cold)
    return float(misses[0]) / float(n)


class LRUCache:
    """Step-by-step fully-associative LRU cache.

    The slow-but-obvious reference: an :class:`collections.OrderedDict`
    keyed by block id, evicting the least recently used entry on overflow.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._stack: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, block: int) -> bool:
        """Touch one block; returns ``True`` on a hit."""
        stack = self._stack
        if block in stack:
            stack.move_to_end(block)
            self.hits += 1
            return True
        if len(stack) >= self.capacity:
            stack.popitem(last=False)
        stack[block] = None
        self.misses += 1
        return False

    def run(self, trace: Trace | np.ndarray) -> np.ndarray:
        """Replay a trace; returns a boolean hit mask per access."""
        blocks = trace.blocks if isinstance(trace, Trace) else np.asarray(trace, np.int64)
        out = np.empty(blocks.size, dtype=bool)
        for i, b in enumerate(blocks.tolist()):
            out[i] = self.access(b)
        return out

    @property
    def occupancy(self) -> int:
        """Blocks currently resident."""
        return len(self._stack)

    def resident(self) -> set[int]:
        """Set of resident block ids (for occupancy attribution)."""
        return set(self._stack.keys())
