"""Shared-cache co-run simulation (ground truth for §VII-C validation).

Runs several programs through **one** fully-associative LRU cache by
interleaving their traces, then attributes each miss to the program that
issued the access.  This is the in-repo stand-in for the hardware
performance counters the paper's cited validation used — it measures the
*actual* free-for-all miss ratio that the Natural Cache Partition is
supposed to reproduce.

Also measures time-averaged per-program cache *occupancy*, the quantity
the natural partition predicts (paper §V-A, Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cachesim.lru import LRUCache
from repro.cachesim.stack import COLD, stack_distances
from repro.workloads.interleave import Interleaved, interleave
from repro.workloads.trace import Trace

__all__ = [
    "SharedRunResult",
    "simulate_shared",
    "shared_occupancy",
    "simulate_partition_sharing",
]


@dataclass(frozen=True)
class SharedRunResult:
    """Per-program outcome of one shared-cache co-run."""

    names: tuple[str, ...]
    accesses: np.ndarray
    misses: np.ndarray
    cold_misses: np.ndarray

    def miss_ratios(self, *, include_cold: bool = False) -> np.ndarray:
        misses = self.misses + (self.cold_misses if include_cold else 0)
        return misses / np.maximum(self.accesses, 1)

    def group_miss_ratio(self, *, include_cold: bool = False) -> float:
        misses = self.misses + (self.cold_misses if include_cold else 0)
        return float(misses.sum()) / float(max(self.accesses.sum(), 1))


def simulate_shared(
    traces: Sequence[Trace],
    cache_size: int,
    *,
    mode: str = "proportional",
    limit: int | None = None,
    rng: np.random.Generator | None = None,
    interleaved: Interleaved | None = None,
) -> SharedRunResult:
    """Free-for-all sharing of one LRU cache by several programs.

    Capacity misses are attributed per issuing program via the stack
    distances of the merged trace; cold misses are reported separately so
    callers can match the HOTL steady-state convention.
    """
    if cache_size < 1:
        raise ValueError("cache_size must be >= 1")
    inter = interleaved if interleaved is not None else interleave(
        traces, mode=mode, limit=limit, rng=rng
    )
    dist = stack_distances(inter.trace)
    cold = dist == COLD
    miss = cold | (dist > cache_size)
    n_prog = len(traces)
    accesses = np.bincount(inter.owner, minlength=n_prog)
    misses = np.bincount(inter.owner[miss & ~cold], minlength=n_prog)
    cold_misses = np.bincount(inter.owner[cold], minlength=n_prog)
    return SharedRunResult(
        names=tuple(t.name for t in traces),
        accesses=accesses.astype(np.int64),
        misses=misses.astype(np.int64),
        cold_misses=cold_misses.astype(np.int64),
    )


def simulate_partition_sharing(
    traces: Sequence[Trace],
    grouping: Sequence[Sequence[int]],
    partition_sizes: Sequence[int],
    *,
    mode: str = "proportional",
    limit: int | None = None,
    rng: np.random.Generator | None = None,
) -> SharedRunResult:
    """Trace-level simulation of an arbitrary partition-sharing scheme (§II).

    Programs in the same group share one LRU partition; different groups
    never interact.  ``grouping`` partitions the trace indices and
    ``partition_sizes`` gives each group's partition in blocks.  With
    singleton groups this is strict partitioning; with one group it is
    free-for-all sharing.  The global interleaving is computed once over
    *all* programs (so phase alignment is preserved — the effect the
    paper's Figure 1 exploits) and each partition sees its members'
    subsequence.
    """
    if len(grouping) != len(partition_sizes):
        raise ValueError("one partition size per group required")
    seen = sorted(i for grp in grouping for i in grp)
    if seen != list(range(len(traces))):
        raise ValueError("grouping must partition the trace indices exactly")
    inter = interleave(traces, mode=mode, limit=limit, rng=rng)
    n_prog = len(traces)
    accesses = np.bincount(inter.owner, minlength=n_prog).astype(np.int64)
    misses = np.zeros(n_prog, dtype=np.int64)
    cold_misses = np.zeros(n_prog, dtype=np.int64)
    for grp, size in zip(grouping, partition_sizes):
        grp = list(grp)
        mask = np.isin(inter.owner, grp)
        sub_blocks = inter.trace.blocks[mask]
        sub_owner = inter.owner[mask]
        dist = stack_distances(sub_blocks)
        cold = dist == COLD
        if size < 1:
            miss = np.ones(sub_blocks.size, dtype=bool)
        else:
            miss = cold | (dist > size)
        misses += np.bincount(sub_owner[miss & ~cold], minlength=n_prog)
        cold_misses += np.bincount(sub_owner[cold], minlength=n_prog)
    return SharedRunResult(
        names=tuple(t.name for t in traces),
        accesses=accesses,
        misses=misses,
        cold_misses=cold_misses,
    )


def shared_occupancy(
    traces: Sequence[Trace],
    cache_size: int,
    *,
    mode: str = "proportional",
    limit: int | None = None,
    rng: np.random.Generator | None = None,
    sample_every: int = 256,
    warmup_fraction: float = 0.25,
) -> np.ndarray:
    """Time-averaged per-program occupancy of a shared LRU cache.

    Replays the interleaved trace through an explicit LRU stack and samples
    how many resident blocks belong to each program, skipping an initial
    warm-up (the natural partition is a steady-state concept).  Returns the
    mean occupancies in blocks, one per program.
    """
    inter = interleave(traces, mode=mode, limit=limit, rng=rng)
    bases = np.append(inter.id_bases, np.iinfo(np.int64).max)
    cache = LRUCache(cache_size)
    blocks = inter.trace.blocks
    n = blocks.size
    start = int(n * warmup_fraction)
    sums = np.zeros(len(traces), dtype=np.float64)
    n_samples = 0
    for t, b in enumerate(blocks.tolist()):
        cache.access(b)
        if t >= start and (t - start) % sample_every == 0:
            resident = np.fromiter(cache.resident(), dtype=np.int64, count=cache.occupancy)
            owners = np.searchsorted(bases, resident, side="right") - 1
            sums += np.bincount(owners, minlength=len(traces))
            n_samples += 1
    if n_samples == 0:
        raise ValueError("trace too short for the requested warmup/sampling")
    return sums / n_samples
