"""Non-LRU replacement policies (paper §VIII).

"The replacement policy may be an approximation or improvement of LRU."
The HOTL theory models true LRU; these simulators supply the
approximations actually built in hardware so the approximation error can
be measured in-repo:

* :class:`TreePLRUCache` — the classic tree pseudo-LRU used by most
  set-associative designs (ways must be a power of two);
* :class:`FIFOCache` — replace the oldest-filled line (no recency update
  on hit);
* :class:`RandomCache` — replace a uniformly random line;
* :class:`ClockCache` — the second-chance/CLOCK approximation of LRU.

All share the per-set array layout of
:class:`~repro.cachesim.setassoc.SetAssociativeCache` and its ``access`` /
``run`` interface.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.trace import Trace

__all__ = ["TreePLRUCache", "FIFOCache", "RandomCache", "ClockCache"]


class _SetCacheBase:
    """Common storage and bookkeeping for per-set policies."""

    def __init__(self, n_sets: int, ways: int):
        if n_sets < 1 or ways < 1:
            raise ValueError("n_sets and ways must be >= 1")
        self.n_sets = int(n_sets)
        self.ways = int(ways)
        self._tags = np.full((n_sets, ways), -1, dtype=np.int64)
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        return self.n_sets * self.ways

    def _set_index(self, block: int) -> int:
        return block % self.n_sets

    def access(self, block: int) -> bool:
        s = self._set_index(block)
        tags = self._tags[s]
        hit_ways = np.flatnonzero(tags == block)
        if hit_ways.size:
            self.hits += 1
            self._on_hit(s, int(hit_ways[0]))
            return True
        self.misses += 1
        victim = self._pick_victim(s)
        tags[victim] = block
        self._on_fill(s, victim)
        return False

    def run(self, trace: Trace | np.ndarray) -> np.ndarray:
        blocks = trace.blocks if isinstance(trace, Trace) else np.asarray(trace, np.int64)
        out = np.empty(blocks.size, dtype=bool)
        for i, b in enumerate(blocks.tolist()):
            out[i] = self.access(b)
        return out

    # policy hooks ------------------------------------------------------
    def _on_hit(self, s: int, way: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def _on_fill(self, s: int, way: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def _pick_victim(self, s: int) -> int:  # pragma: no cover
        raise NotImplementedError


class TreePLRUCache(_SetCacheBase):
    """Tree pseudo-LRU: one bit per internal node of a binary tree.

    On a touch, the path bits are set to point *away* from the touched
    way; the victim is found by following the bits.  ``ways`` must be a
    power of two.
    """

    def __init__(self, n_sets: int, ways: int):
        super().__init__(n_sets, ways)
        if ways & (ways - 1):
            raise ValueError("tree PLRU needs a power-of-two way count")
        self._bits = np.zeros((n_sets, max(ways - 1, 1)), dtype=np.int8)

    def _touch(self, s: int, way: int) -> None:
        if self.ways == 1:
            return
        bits = self._bits[s]
        node = 0
        lo, hi = 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:  # touched left: point victim search right
                bits[node] = 1
                node = 2 * node + 1
                hi = mid
            else:
                bits[node] = 0
                node = 2 * node + 2
                lo = mid
        return

    def _on_hit(self, s: int, way: int) -> None:
        self._touch(s, way)

    def _on_fill(self, s: int, way: int) -> None:
        self._touch(s, way)

    def _pick_victim(self, s: int) -> int:
        if self.ways == 1:
            return 0
        # prefer an empty way before evicting
        empty = np.flatnonzero(self._tags[s] == -1)
        if empty.size:
            return int(empty[0])
        bits = self._bits[s]
        node = 0
        lo, hi = 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if bits[node] == 1:  # bit points right
                node = 2 * node + 2
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid
        return lo


class FIFOCache(_SetCacheBase):
    """First-in first-out: a round-robin fill pointer per set."""

    def __init__(self, n_sets: int, ways: int):
        super().__init__(n_sets, ways)
        self._next = np.zeros(n_sets, dtype=np.int64)

    def _on_hit(self, s: int, way: int) -> None:
        pass  # FIFO ignores recency

    def _on_fill(self, s: int, way: int) -> None:
        self._next[s] = (way + 1) % self.ways

    def _pick_victim(self, s: int) -> int:
        empty = np.flatnonzero(self._tags[s] == -1)
        if empty.size:
            return int(empty[0])
        return int(self._next[s])


class RandomCache(_SetCacheBase):
    """Uniform random replacement."""

    def __init__(self, n_sets: int, ways: int, *, seed: int = 0):
        super().__init__(n_sets, ways)
        self._rng = np.random.default_rng(seed)

    def _on_hit(self, s: int, way: int) -> None:
        pass

    def _on_fill(self, s: int, way: int) -> None:
        pass

    def _pick_victim(self, s: int) -> int:
        empty = np.flatnonzero(self._tags[s] == -1)
        if empty.size:
            return int(empty[0])
        return int(self._rng.integers(self.ways))


class ClockCache(_SetCacheBase):
    """CLOCK / second-chance: a reference bit per line, swept by a hand."""

    def __init__(self, n_sets: int, ways: int):
        super().__init__(n_sets, ways)
        self._ref = np.zeros((n_sets, ways), dtype=np.int8)
        self._hand = np.zeros(n_sets, dtype=np.int64)

    def _on_hit(self, s: int, way: int) -> None:
        self._ref[s, way] = 1

    def _on_fill(self, s: int, way: int) -> None:
        self._ref[s, way] = 1

    def _pick_victim(self, s: int) -> int:
        empty = np.flatnonzero(self._tags[s] == -1)
        if empty.size:
            return int(empty[0])
        ref = self._ref[s]
        hand = int(self._hand[s])
        while True:
            if ref[hand] == 0:
                self._hand[s] = (hand + 1) % self.ways
                return hand
            ref[hand] = 0
            hand = (hand + 1) % self.ways
