"""Statistical set-associativity model (paper §VIII, citing Smith [8]).

The HOTL theory targets fully-associative LRU; real caches are
set-associative.  The paper's §VIII notes the fully-associative result
transfers via A. J. Smith's classic model: a block maps to one of ``S``
sets uniformly, and an access at (fully-associative) stack distance ``D``
misses in an ``a``-way cache iff at least ``a`` of the ``D - 1``
intervening distinct blocks landed in the *same* set —

    P[miss | D] = P[Binomial(D - 1, 1/S) >= a]

Summing over the measured stack-distance histogram converts any
fully-associative profile into a set-associative miss-ratio estimate,
validated here against the exact :class:`SetAssociativeCache` simulator.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.cachesim.stack import distance_histogram
from repro.workloads.trace import Trace

__all__ = ["set_assoc_miss_probability", "smith_set_assoc_miss_ratio"]


def set_assoc_miss_probability(
    distances: np.ndarray, n_sets: int, ways: int
) -> np.ndarray:
    """Per-distance miss probability in an ``n_sets`` × ``ways`` cache.

    ``distances`` are fully-associative LRU stack distances (``>= 1``).
    Vectorized over the distance array.
    """
    d = np.asarray(distances, dtype=np.int64)
    if np.any(d < 1):
        raise ValueError("stack distances must be >= 1")
    if n_sets < 1 or ways < 1:
        raise ValueError("n_sets and ways must be >= 1")
    # P[Binomial(d - 1, 1/S) >= ways] ; sf(k) = P[X > k]
    return stats.binom.sf(ways - 1, d - 1, 1.0 / n_sets)


def smith_set_assoc_miss_ratio(
    trace: Trace | np.ndarray,
    n_sets: int,
    ways: int,
    *,
    include_cold: bool = True,
) -> float:
    """Expected set-associative miss ratio of a trace via Smith's model.

    Uses the exact stack-distance histogram of the trace; cold misses are
    certain misses regardless of geometry.
    """
    hist, n_cold = distance_histogram(trace)
    n = len(trace) if isinstance(trace, Trace) else np.asarray(trace).size
    if n == 0:
        return 0.0
    dists = np.flatnonzero(hist)
    if dists.size:
        probs = set_assoc_miss_probability(dists, n_sets, ways)
        expected = float(np.dot(hist[dists], probs))
    else:
        expected = 0.0
    if include_cold:
        expected += n_cold
    return expected / n
