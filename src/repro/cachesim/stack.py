"""LRU stack-distance computation.

The stack distance (reuse distance) of an access is the number of distinct
blocks touched since the previous access to the same block, inclusive.  An
access hits in a fully-associative LRU cache of ``c`` blocks iff its stack
distance is ``<= c`` — so one pass yields the exact miss count for *every*
cache size at once (the ground truth against which HOTL is validated,
§VII-C).

Algorithm: the classic offline Fenwick-tree (binary indexed tree) method.
A position holds a 1 in the tree iff it is currently the most recent access
of its block; the distance of an access at ``j`` whose previous occurrence
is ``p`` is then the number of marked positions in ``(p, j)`` plus one.
O(n log n) total.
"""

from __future__ import annotations

import numpy as np

from repro.locality.reuse import previous_occurrence
from repro.workloads.trace import Trace

__all__ = ["stack_distances", "COLD"]

COLD: int = -1
"""Sentinel stack distance for a first (compulsory-miss) access."""


def stack_distances(trace: Trace | np.ndarray) -> np.ndarray:
    """Exact LRU stack distance of every access; first accesses get :data:`COLD`.

    Example: for the trace ``a b a`` the distances are ``[-1, -1, 2]``
    (the second ``a`` re-touches its block past one other distinct block).
    """
    blocks = trace.blocks if isinstance(trace, Trace) else np.ascontiguousarray(trace, np.int64)
    n = int(blocks.size)
    dist = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return dist
    prev = previous_occurrence(blocks)
    tree = np.zeros(n + 1, dtype=np.int64)  # Fenwick over positions 1..n

    def add(pos: int, delta: int) -> None:
        i = pos + 1
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def prefix(pos: int) -> int:
        # sum of marks at positions 0..pos
        i = pos + 1
        s = 0
        while i > 0:
            s += tree[i]
            i -= i & (-i)
        return int(s)

    for j in range(n):
        p = int(prev[j])
        if p >= 0:
            # marked positions strictly between p and j, plus the block itself
            dist[j] = prefix(j - 1) - prefix(p) + 1
            add(p, -1)
        add(j, 1)
    return dist


def distance_histogram(trace: Trace | np.ndarray) -> tuple[np.ndarray, int]:
    """Histogram of reuse stack distances and the cold-miss count.

    Returns ``(hist, n_cold)`` where ``hist[d]`` counts reuse accesses at
    distance ``d`` (``d >= 1``).
    """
    dist = stack_distances(trace)
    reuse = dist[dist != COLD]
    n_cold = int(dist.size - reuse.size)
    size = int(reuse.max()) + 1 if reuse.size else 2
    return np.bincount(reuse, minlength=size), n_cold
