"""Cache simulators: the measurement substrate (§VII-C ground truth)."""

from repro.cachesim.associativity import (
    set_assoc_miss_probability,
    smith_set_assoc_miss_ratio,
)
from repro.cachesim.lru import LRUCache, lru_miss_counts, lru_miss_ratio
from repro.cachesim.partitioned import PartitionedRunResult, simulate_partitioned
from repro.cachesim.policies import (
    ClockCache,
    FIFOCache,
    RandomCache,
    TreePLRUCache,
)
from repro.cachesim.setassoc import SetAssociativeCache, set_assoc_miss_count
from repro.cachesim.shared import (
    SharedRunResult,
    shared_occupancy,
    simulate_partition_sharing,
    simulate_shared,
)
from repro.cachesim.stack import COLD, distance_histogram, stack_distances

__all__ = [
    "set_assoc_miss_probability",
    "smith_set_assoc_miss_ratio",
    "LRUCache",
    "lru_miss_counts",
    "lru_miss_ratio",
    "PartitionedRunResult",
    "simulate_partitioned",
    "ClockCache",
    "FIFOCache",
    "RandomCache",
    "TreePLRUCache",
    "SetAssociativeCache",
    "set_assoc_miss_count",
    "SharedRunResult",
    "shared_occupancy",
    "simulate_partition_sharing",
    "simulate_shared",
    "COLD",
    "distance_histogram",
    "stack_distances",
]
