"""Set-associative LRU cache simulation.

The paper's theory targets fully-associative LRU (§VIII "Fully Associative
LRU Cache") and cites prior work showing the fully-associative prediction
transfers to real set-associative hardware.  This simulator provides the
set-associative ground truth so that transfer can be checked in-repo: each
set is an independent LRU stack of ``ways`` lines, and blocks map to sets
by the low-order bits of the block id (the usual index function).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.trace import Trace

__all__ = ["SetAssociativeCache", "set_assoc_miss_count"]


class SetAssociativeCache:
    """An ``n_sets`` × ``ways`` LRU cache.

    Implemented with two dense arrays — the tag matrix and a per-way age
    matrix — so the per-access work is O(ways) with no Python allocation.
    """

    def __init__(self, n_sets: int, ways: int):
        if n_sets < 1 or ways < 1:
            raise ValueError("n_sets and ways must be >= 1")
        self.n_sets = int(n_sets)
        self.ways = int(ways)
        self._tags = np.full((n_sets, ways), -1, dtype=np.int64)
        self._age = np.zeros((n_sets, ways), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        return self.n_sets * self.ways

    def _set_index(self, block: int) -> int:
        return block % self.n_sets

    def access(self, block: int) -> bool:
        """Touch one block; returns ``True`` on a hit."""
        s = self._set_index(block)
        tags = self._tags[s]
        self._clock += 1
        hit_ways = np.flatnonzero(tags == block)
        if hit_ways.size:
            self._age[s, hit_ways[0]] = self._clock
            self.hits += 1
            return True
        victim = int(np.argmin(self._age[s]))
        tags[victim] = block
        self._age[s, victim] = self._clock
        self.misses += 1
        return False

    def run(self, trace: Trace | np.ndarray) -> np.ndarray:
        blocks = trace.blocks if isinstance(trace, Trace) else np.asarray(trace, np.int64)
        out = np.empty(blocks.size, dtype=bool)
        for i, b in enumerate(blocks.tolist()):
            out[i] = self.access(b)
        return out


def set_assoc_miss_count(trace: Trace | np.ndarray, n_sets: int, ways: int) -> int:
    """Total misses of a trace on an ``n_sets`` × ``ways`` LRU cache."""
    cache = SetAssociativeCache(n_sets, ways)
    cache.run(trace)
    return cache.misses
