"""Co-run miss-ratio prediction and the Natural Cache Partition (§IV–§V-A).

Given the composed group footprint (Eq. 9), a shared cache of ``C`` blocks
fills over the unique combined window ``w*`` with ``fp(w*) = C``.  At that
steady state:

* program ``i`` holds ``c_i = fp_i(w* · ratio_i)`` blocks — the ordered
  set ``(c_1, c_2, ...)`` is the **Natural Cache Partition** (Fig. 4);
* each program's miss ratio in the shared cache equals its *solo* miss
  ratio at ``c_i`` (Eq. 11 restated per program) — the Natural Partition
  Assumption.

When the cache is larger than the combined working set the window search
saturates and every program simply keeps all of its data (zero steady-state
misses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.composition.stretch import ComposedFootprint, compose_footprints
from repro.locality.footprint import FootprintCurve
from repro.locality.hotl import miss_ratio

__all__ = [
    "CoRunPrediction",
    "CorunSolver",
    "solve_fill_window",
    "natural_partition",
    "predict_corun",
    "group_miss_ratio_eq11",
]


@dataclass(frozen=True)
class CoRunPrediction:
    """HOTL prediction for one co-run group in a shared cache."""

    names: tuple[str, ...]
    cache_size: int
    fill_window: float
    occupancies: np.ndarray  # natural partition, fractional blocks
    miss_ratios: np.ndarray  # per-program shared-cache miss ratios
    n_accesses: np.ndarray

    @property
    def group_miss_ratio(self) -> float:
        """Access-weighted group miss ratio (total misses / total accesses)."""
        total = float(self.n_accesses.sum())
        return float(np.dot(self.miss_ratios, self.n_accesses)) / total


def solve_fill_window(composed: ComposedFootprint, cache_size: float) -> float:
    """Combined window length ``w*`` with ``fp(w*) = cache_size``.

    The composed footprint is continuous, non-decreasing and piecewise
    linear, so bisection converges unconditionally.  Returns
    ``composed.max_window`` when the cache exceeds the combined data size
    (the group never fills it).
    """
    if cache_size <= 0:
        return 0.0
    hi = composed.max_window
    if composed.total_data <= cache_size or composed(hi) <= cache_size:
        return hi
    lo = 0.0
    # bisection to sub-access precision (the curve is linear between
    # integer stretched windows, so 64 iterations are far beyond enough)
    for _ in range(64):
        mid = 0.5 * (lo + hi)
        if composed(mid) < cache_size:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-9 * max(hi, 1.0):
            break
    return 0.5 * (lo + hi)


def natural_partition(
    footprints: Sequence[FootprintCurve], cache_size: int
) -> np.ndarray:
    """The Natural Cache Partition ``(c_1, .., c_P)`` in fractional blocks.

    Occupancies sum to ``cache_size`` when the group can fill the cache,
    and to the combined working set otherwise.
    """
    composed = compose_footprints(footprints)
    w_star = solve_fill_window(composed, cache_size)
    return composed.components(w_star)


_KNOTS_PER_PROGRAM: int = 4096
"""Grid-size cap per component in :class:`CorunSolver` (accuracy/speed knob)."""


class CorunSolver:
    """Fast repeated co-run prediction for one program group.

    The composed footprint (Eq. 9) is piecewise linear with knots where any
    *stretched* component hits an integer window.  Precomputing the curve on
    the union of those knots (up to the largest cache size of interest)
    turns every subsequent fill-window solve into one interpolation lookup —
    the workhorse behind the 1820-group sweep and the partition-sharing
    group-curve construction.
    """

    def __init__(self, footprints: Sequence[FootprintCurve], max_cache: int):
        if max_cache < 1:
            raise ValueError("max_cache must be >= 1")
        self.footprints = tuple(footprints)
        self.composed = compose_footprints(footprints)
        self.max_cache = int(max_cache)
        # window reaching the largest cache size of interest (one bisection)
        w_cap = solve_fill_window(self.composed, float(max_cache))
        ratios = self.composed.ratios
        knots = [np.array([0.0, w_cap])]
        for fp, r in zip(self.footprints, ratios):
            if r <= 0:
                continue
            v_max = min(fp.n, int(np.ceil(w_cap * r)) + 1)
            if v_max <= _KNOTS_PER_PROGRAM:
                v = np.arange(v_max + 1, dtype=np.float64)
            else:
                # footprints are near-concave: a dense-near-zero log grid
                # approximates the piecewise-linear curve to high accuracy
                v = np.unique(
                    np.round(
                        np.geomspace(1.0, v_max, _KNOTS_PER_PROGRAM)
                    )
                )
                v = np.concatenate([[0.0], v])
            knots.append(v / r)
        grid = np.unique(np.concatenate(knots))
        grid = grid[grid <= w_cap + 1e-9]
        self._w_grid = grid
        self._fp_grid = np.asarray(self.composed(grid), dtype=np.float64)
        self._n_accesses = np.array([fp.n for fp in self.footprints], dtype=np.int64)

    def fill_windows(self, cache_sizes: np.ndarray | float) -> np.ndarray | float:
        """Vectorized ``w*`` solve: combined window filling each cache size."""
        c = np.asarray(cache_sizes, dtype=np.float64)
        if np.any(c > self.max_cache + 1e-9):
            raise ValueError("cache size exceeds the solver's max_cache")
        fp_vals = self._fp_grid
        idx = np.searchsorted(fp_vals, c, side="left")
        idx = np.clip(idx, 1, fp_vals.size - 1)
        f_lo, f_hi = fp_vals[idx - 1], fp_vals[idx]
        w_lo, w_hi = self._w_grid[idx - 1], self._w_grid[idx]
        run = f_hi - f_lo
        frac = np.where(run > 0, (c - f_lo) / np.where(run > 0, run, 1.0), 0.0)
        w = w_lo + np.clip(frac, 0.0, 1.0) * (w_hi - w_lo)
        # saturate: cache bigger than the group's data never fills
        w = np.where(c >= fp_vals[-1], self._w_grid[-1], w)
        w = np.where(c <= 0, 0.0, w)
        return float(w) if w.ndim == 0 else w

    def occupancies(self, cache_size: float) -> np.ndarray:
        """Natural Cache Partition at one cache size (fractional blocks)."""
        w = float(self.fill_windows(cache_size))
        return self.composed.components(w)

    def predict(self, cache_size: int) -> CoRunPrediction:
        """Equivalent of :func:`predict_corun`, using the precomputed grid."""
        occ = self.occupancies(cache_size)
        ratios = np.array(
            [float(miss_ratio(fp, c)) for fp, c in zip(self.footprints, occ)],
            dtype=np.float64,
        )
        return CoRunPrediction(
            names=tuple(fp.name for fp in self.footprints),
            cache_size=int(cache_size),
            fill_window=float(self.fill_windows(cache_size)),
            occupancies=occ,
            miss_ratios=ratios,
            n_accesses=self._n_accesses,
        )

    def group_miss_counts(self, cache_sizes: np.ndarray) -> np.ndarray:
        """Expected group miss count at each cache size (vectorized).

        Used to build partition-sharing group cost curves: for each size,
        the sum over members of ``mr_i(c_i) * n_i`` at the natural
        occupancies.
        """
        sizes = np.asarray(cache_sizes, dtype=np.float64)
        w = np.atleast_1d(np.asarray(self.fill_windows(sizes), dtype=np.float64))
        total = np.zeros(w.size, dtype=np.float64)
        for fp, r, n in zip(self.footprints, self.composed.ratios, self._n_accesses):
            occ = np.asarray(fp(w * r), dtype=np.float64)
            mrs = np.asarray(miss_ratio(fp, occ), dtype=np.float64)
            total += mrs * float(n)
        zero_sized = np.atleast_1d(sizes) <= 0
        if np.any(zero_sized):
            total[zero_sized] = float(self._n_accesses.sum())
        return total


def predict_corun(
    footprints: Sequence[FootprintCurve], cache_size: int
) -> CoRunPrediction:
    """Full shared-cache prediction: NCP occupancies and per-program miss ratios.

    Each program's shared miss ratio is its solo HOTL miss ratio at its
    natural occupancy — the reduction at the heart of the paper (§V-A).
    """
    if cache_size < 1:
        raise ValueError("cache_size must be >= 1")
    composed = compose_footprints(footprints)
    w_star = solve_fill_window(composed, cache_size)
    occ = composed.components(w_star)
    ratios = np.array(
        [float(miss_ratio(fp, c)) for fp, c in zip(footprints, occ)], dtype=np.float64
    )
    return CoRunPrediction(
        names=tuple(fp.name for fp in footprints),
        cache_size=int(cache_size),
        fill_window=float(w_star),
        occupancies=occ,
        miss_ratios=ratios,
        n_accesses=np.array([fp.n for fp in footprints], dtype=np.int64),
    )


def group_miss_ratio_eq11(
    footprints: Sequence[FootprintCurve], cache_size: int
) -> float:
    """The paper's Eq. 11, literally: misses per *combined* access.

    ``mr(c) = fp1((w+1) * r1/R) + fp2((w+1) * r2/R) - c`` with ``fp(w) = c``
    — the composed footprint's forward slope at the fill window,
    generalized to any number of programs.  Equivalent to weighting each
    program's natural-occupancy miss ratio by its access-rate share (the
    per-program form used by :func:`predict_corun`); the equivalence is
    checked in the test-suite.
    """
    if cache_size < 1:
        raise ValueError("cache_size must be >= 1")
    composed = compose_footprints(footprints)
    w_star = solve_fill_window(composed, cache_size)
    if w_star >= composed.max_window:
        return 0.0  # the group never fills the cache: no steady misses
    return float(np.clip(composed(w_star + 1.0) - cache_size, 0.0, 1.0))
