"""Footprint composition (paper §IV, Eq. 9).

When non-data-sharing programs interleave, each program's footprint
function is *horizontally stretched* by its share of the merged access
stream: in a combined window of ``w`` accesses, program ``i`` issues
``w * r_i / R`` of them (``r_i`` its access rate, ``R`` the group total).
The combined footprint is the sum of the stretched individual footprints:

    fp(w) = sum_i fp_i(w * r_i / R)                         (Eq. 9)

This composability is what lets the whole study work from 16 solo profiles
instead of 1820 co-run measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.locality.footprint import FootprintCurve

__all__ = ["ComposedFootprint", "compose_footprints"]


@dataclass(frozen=True)
class ComposedFootprint:
    """The group footprint of a set of co-run programs (Eq. 9).

    Evaluates ``fp(w)`` for combined window lengths ``w`` and exposes the
    per-program stretched components needed by the natural partition.
    """

    footprints: tuple[FootprintCurve, ...]
    ratios: np.ndarray  # r_i / R, summing to 1

    def __post_init__(self) -> None:
        r = np.ascontiguousarray(self.ratios, dtype=np.float64)
        if r.size != len(self.footprints):
            raise ValueError("one ratio per footprint required")
        if not np.isclose(r.sum(), 1.0):
            raise ValueError("ratios must sum to 1")
        r.setflags(write=False)
        object.__setattr__(self, "ratios", r)

    # ------------------------------------------------------------------
    @property
    def n_programs(self) -> int:
        return len(self.footprints)

    @property
    def total_data(self) -> float:
        """Combined working set: the saturation value of the group footprint."""
        return float(sum(fp.m for fp in self.footprints))

    @property
    def max_window(self) -> float:
        """Combined window beyond which every component has saturated."""
        return max(fp.n / r if r > 0 else 0.0 for fp, r in zip(self.footprints, self.ratios))

    def components(self, w: float) -> np.ndarray:
        """Per-program stretched footprints ``fp_i(w * ratio_i)`` at window ``w``."""
        return np.array(
            [float(fp(w * r)) for fp, r in zip(self.footprints, self.ratios)],
            dtype=np.float64,
        )

    def __call__(self, w: np.ndarray | float) -> np.ndarray | float:
        """Group footprint ``fp(w)`` (Eq. 9)."""
        w_arr = np.asarray(w, dtype=np.float64)
        total = np.zeros_like(w_arr)
        for fp, r in zip(self.footprints, self.ratios):
            total = total + np.asarray(fp(w_arr * r), dtype=np.float64)
        return float(total) if total.ndim == 0 else total


def compose_footprints(footprints: Sequence[FootprintCurve]) -> ComposedFootprint:
    """Build the group footprint from solo profiles, using their access rates."""
    if not footprints:
        raise ValueError("need at least one footprint")
    rates = np.array([fp.access_rate for fp in footprints], dtype=np.float64)
    if np.any(rates <= 0):
        raise ValueError("access rates must be positive")
    return ComposedFootprint(tuple(footprints), rates / rates.sum())
