"""Access-rate sensitivity of the co-run prediction (paper §IV).

"Since both programs' access rates vary with time, and we cannot predict
what they will be at any given moment, we must treat the access rates as
independent random variables."  The paper defers the stochastic analysis;
this module supplies it by Monte Carlo: perturb each program's rate with
multiplicative log-normal noise, re-solve the natural partition, and
report the distribution of occupancies and miss ratios.

The practical question it answers: how accurate must online rate
monitoring be before the natural-partition (and hence the optimizer's
natural-baseline) outputs are trustworthy?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.composition.corun import predict_corun
from repro.locality.footprint import FootprintCurve

__all__ = ["RateSensitivity", "rate_sensitivity"]


@dataclass(frozen=True)
class RateSensitivity:
    """Monte-Carlo summary of prediction variability under rate noise."""

    names: tuple[str, ...]
    cache_size: int
    rate_cv: float
    occupancy_mean: np.ndarray
    occupancy_std: np.ndarray
    miss_ratio_mean: np.ndarray
    miss_ratio_std: np.ndarray
    group_mr_mean: float
    group_mr_std: float

    @property
    def max_occupancy_cv(self) -> float:
        """Worst per-program coefficient of variation of the occupancy."""
        with np.errstate(divide="ignore", invalid="ignore"):
            cv = np.where(
                self.occupancy_mean > 0, self.occupancy_std / self.occupancy_mean, 0.0
            )
        return float(np.max(cv))


def rate_sensitivity(
    footprints: Sequence[FootprintCurve],
    cache_size: int,
    *,
    rate_cv: float = 0.2,
    n_samples: int = 100,
    rng: np.random.Generator | None = None,
) -> RateSensitivity:
    """Perturb access rates log-normally and re-solve the natural partition.

    ``rate_cv`` is the coefficient of variation of the multiplicative
    noise (0.2 = rates wander by ~20%).  Only rate *ratios* matter to the
    composition, so the noise is applied per program independently.
    """
    if rate_cv < 0:
        raise ValueError("rate_cv must be non-negative")
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    rng = rng if rng is not None else np.random.default_rng(0)
    sigma = np.sqrt(np.log1p(rate_cv**2))  # lognormal with the requested CV
    base_rates = np.array([fp.access_rate for fp in footprints])
    occ = np.empty((n_samples, len(footprints)))
    mrs = np.empty_like(occ)
    group = np.empty(n_samples)
    weights = np.array([fp.n for fp in footprints], dtype=np.float64)
    for s in range(n_samples):
        noise = rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=len(footprints))
        perturbed = [
            FootprintCurve(
                fp.values, n=fp.n, m=fp.m, access_rate=float(r * z), name=fp.name
            )
            for fp, r, z in zip(footprints, base_rates, noise)
        ]
        pred = predict_corun(perturbed, cache_size)
        occ[s] = pred.occupancies
        mrs[s] = pred.miss_ratios
        group[s] = float(np.dot(pred.miss_ratios, weights) / weights.sum())
    return RateSensitivity(
        names=tuple(fp.name for fp in footprints),
        cache_size=int(cache_size),
        rate_cv=float(rate_cv),
        occupancy_mean=occ.mean(axis=0),
        occupancy_std=occ.std(axis=0),
        miss_ratio_mean=mrs.mean(axis=0),
        miss_ratio_std=mrs.std(axis=0),
        group_mr_mean=float(group.mean()),
        group_mr_std=float(group.std()),
    )
