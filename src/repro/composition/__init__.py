"""Composition theory: stretched footprints, co-run prediction, natural partition."""

from repro.composition.corun import (
    CoRunPrediction,
    CorunSolver,
    group_miss_ratio_eq11,
    natural_partition,
    predict_corun,
    solve_fill_window,
)
from repro.composition.sensitivity import RateSensitivity, rate_sensitivity
from repro.composition.stretch import ComposedFootprint, compose_footprints

__all__ = [
    "CoRunPrediction",
    "CorunSolver",
    "group_miss_ratio_eq11",
    "natural_partition",
    "predict_corun",
    "solve_fill_window",
    "ComposedFootprint",
    "compose_footprints",
    "RateSensitivity",
    "rate_sensitivity",
]
