"""Command-line front end: ``repro-cps``.

Subcommands mirror the paper's workflow:

* ``searchspace`` — print the §II solution-space sizes;
* ``optimize``    — evaluate the six schemes for one co-run group;
* ``study``       — the full §VII sweep (Table I + figure summaries);
* ``validate``    — §VII-C NPA validation against the simulator;
* ``figure1``     — the motivating partition-sharing example;
* ``serve``       — stream a workload through the online allocation
  service (:mod:`repro.online`) and score it against the offline optima;
  ``--metrics-port`` exposes Prometheus ``/metrics`` + ``/healthz``
  while it runs, ``--metrics-out`` dumps the final snapshot and epoch
  time-series as JSON, ``--trace-out`` journals spans as JSONL,
  ``--flight-out`` journals decision provenance (the flight recorder)
  and ``--alerts`` arms multi-window SLO burn-rate alerting;
* ``explain``     — read a flight journal back as causal narratives:
  why a tenant's allocation changed at an epoch, why an epoch
  re-solved cold (:mod:`repro.obs.explain`);
* ``top``         — the live terminal view of the controller: per-tenant
  allocation bars, miss-ratio sparklines, lag and solver counters,
  redrawn as each epoch closes; ``--format json`` instead runs the
  stream headless and prints one machine-readable snapshot;
* ``lint``        — repro-lint, the project's own static contract
  checker (:mod:`repro.analysis`): determinism, engine-facade,
  telemetry, and robustness invariants as ``RL001``–``RL011``;
* ``bench``       — the perf subsystem (:mod:`repro.perf`):
  ``bench list`` shows the discovered suite, ``bench run`` executes a
  tier under the isolated-subprocess runner and persists
  ``BENCH_<area>.json`` trajectories, ``bench compare`` is the
  direction-aware regression gate, ``bench report`` renders the
  markdown trajectory table.

The global ``--kernel <name>`` flag selects the min-plus kernel backend
(:mod:`repro.core.kernels`) for the invocation, overriding the
``REPRO_KERNEL`` environment variable.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

__all__ = ["main"]


def _cmd_searchspace(args: argparse.Namespace) -> int:
    from repro.core.searchspace import (
        paper_example,
        partition_sharing_single_cache,
        partitioning_only,
    )

    ex = paper_example()
    print("Paper §II worked example (4 programs, 8 MB cache, 64 B units):")
    print(f"  S2 (partition-sharing) = {ex.s2:,}")
    print(f"  S3 (partitioning only) = {ex.s3:,}")
    print(f"  coverage               = {ex.coverage:.6%}")
    c = args.units
    print(f"\nAt {c} allocation units (npr=4):")
    print(f"  S2 = {partition_sharing_single_cache(4, c):,}")
    print(f"  S3 = {partitioning_only(4, c):,}")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.engine import GroupSolver, scheme_names
    from repro.locality.footprint import average_footprint
    from repro.locality.mrc import MissRatioCurve
    from repro.workloads.spec import make_program

    names = args.programs.split(",")
    cb, unit = args.cache_blocks, args.unit_blocks
    if unit < 1 or cb < 1:
        print("error: --cache-blocks and --unit-blocks must be >= 1", file=sys.stderr)
        return 2
    if cb % unit != 0:
        print(
            f"error: --cache-blocks ({cb}) must be divisible by "
            f"--unit-blocks ({unit}); {cb % unit} blocks would be silently "
            f"unallocatable",
            file=sys.stderr,
        )
        return 2
    n_units = cb // unit
    traces = [make_program(n.strip(), cb) for n in names]
    fps = [average_footprint(t) for t in traces]
    mrcs = [MissRatioCurve.from_footprint(fp, cb).resample(unit, n_units) for fp in fps]
    ev = GroupSolver(n_units, unit).evaluate(mrcs, fps)
    print(f"Group: {', '.join(names)}   cache {cb} blocks in {n_units} units")
    header = f"{'scheme':18s} {'group mr':>9s}  allocations (units)"
    print(header)
    print("-" * len(header))
    for s in scheme_names():
        o = ev.outcomes[s]
        alloc = ", ".join(f"{a:.1f}" for a in np.atleast_1d(o.allocation))
        print(f"{s:18s} {o.group_miss_ratio:9.4f}  [{alloc}]")
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.experiments.figures import gainer_fraction, sttw_failure_stats
    from repro.experiments.methodology import (
        ExperimentConfig,
        build_suite_profile,
        run_study,
    )
    from repro.experiments.table1 import format_table, improvement_table

    cfg = ExperimentConfig.from_env()
    jobs = args.jobs if args.jobs is not None else cfg.n_jobs
    tracer = None
    if args.trace_out is not None:
        from repro.obs import Tracer

        tracer = Tracer(journal=args.trace_out)
    print(
        f"Running the exhaustive study: {cfg.n_groups} groups of "
        f"{cfg.group_size}, {cfg.n_units} units of {cfg.unit_blocks} blocks"
        + (f", {jobs} worker processes" if jobs > 1 else "")
    )
    t0 = time.perf_counter()
    profile = build_suite_profile(cfg)
    print(f"  profiled {len(profile.names)} programs in {time.perf_counter() - t0:.1f}s")
    try:
        policy = _parse_policy(
            args.weights, args.slo, args.baseline, len(profile.names)
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if policy is not None:
        print(f"  objective policy {policy.fingerprint().hex()[:12]} "
              f"(baseline {policy.baseline!r})")
    t0 = time.perf_counter()
    result = run_study(profile, progress=True, n_jobs=jobs, tracer=tracer, policy=policy)
    per_group = (time.perf_counter() - t0) / cfg.n_groups
    print(f"  swept {cfg.n_groups} groups in {time.perf_counter() - t0:.1f}s "
          f"({per_group * 1e3:.1f} ms/group)")
    fc = result.fold_cache_stats
    if fc:
        print(f"  fold cache: {fc['hits']:,} hits / {fc['lookups']:,} lookups "
              f"({fc['hit_ratio']:.1%} hit ratio), {fc['entries']:,} entries, "
              f"{fc['evictions']:,} evictions, {fc['workers']} worker(s)")
    if tracer is not None:
        tracer.close()
        print(f"  wrote span journal to {args.trace_out}")
    print()
    print("Table I — improvement of Optimal over each method:")
    print(format_table(improvement_table(result)))
    print("\nSTTW convexity failures:", sttw_failure_stats(result))
    gf = gainer_fraction(result)
    print("\nSharing gainers (fraction of groups where Natural < Equal):")
    for name, frac in sorted(gf.items(), key=lambda kv: -kv[1]):
        print(f"  {name:12s} {frac:6.1%}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.validation import validate_corun, validate_solo
    from repro.workloads.spec import make_program

    cb = args.cache_blocks
    names = ["mcf", "tonto", "wrf", "povray"]
    print("Solo HOTL-vs-LRU validation:")
    for n in names:
        tr = make_program(n, cb, length_scale=0.25)
        sizes = [cb // 8, cb // 4, cb // 2]
        v = validate_solo(tr, sizes)
        print(f"  {n:10s} max |pred - meas| = {v.max_error:.4f}")
    print("Pairwise co-run validation (NPA check):")
    for a, b in [("mcf", "tonto"), ("wrf", "povray")]:
        ta = make_program(a, cb, length_scale=0.25)
        tb = make_program(b, cb, length_scale=0.25)
        v = validate_corun([ta, tb], cb)
        print(f"  {a}+{b}: max error = {v.max_error:.4f}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.workloads.spec import make_program
    from repro.workloads.stats import summarize_trace

    for name in args.programs.split(","):
        trace = make_program(name.strip(), args.cache_blocks)
        stats = summarize_trace(trace)
        print(stats.format())
        print()
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.export import export_study
    from repro.experiments.methodology import (
        ExperimentConfig,
        build_suite_profile,
        run_study,
    )

    cfg = ExperimentConfig.from_env()
    jobs = args.jobs if args.jobs is not None else cfg.n_jobs
    print(f"Running the study ({cfg.n_groups} groups, {cfg.n_units} units)...")
    t0 = time.perf_counter()
    result = run_study(build_suite_profile(cfg), n_jobs=jobs)
    print(f"  done in {time.perf_counter() - t0:.1f}s; writing CSVs to {args.out}")
    for path in export_study(result, args.out):
        print(f"  wrote {path}")
    return 0


def _changed_files() -> list[str]:
    """Paths git considers modified or untracked, relative to the cwd.

    Raises ``RuntimeError`` when git is unavailable or the cwd is not a
    work tree — ``--changed`` silently linting everything (or nothing)
    would defeat its purpose.
    """
    import subprocess

    out: list[str] = []
    for cmd in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
        except (OSError, subprocess.CalledProcessError) as exc:
            raise RuntimeError(f"--changed needs git: {' '.join(cmd)} failed") from exc
        out.extend(line.strip() for line in proc.stdout.splitlines() if line.strip())
    return out


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        DEFAULT_CACHE_PATH,
        LintCache,
        get_rule,
        lint_project,
        render_json,
        render_sarif,
        render_text,
        resolve_rules,
        rule_ids,
    )

    if args.list_rules:
        for rid in rule_ids():
            cls = get_rule(rid)
            print(f"{rid}  {cls.name:22s} {cls.contract}")
        return 0
    selected = None
    if args.select is not None:
        try:
            selected = resolve_rules(
                tok.strip() for tok in args.select.split(",") if tok.strip()
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    only: list[Path] | None = None
    if args.changed:
        try:
            changed = {Path(p).resolve() for p in _changed_files()}
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        only = sorted(p for p in changed if p.suffix == ".py")

    cache = None
    if args.cache is not None:
        from repro.analysis import catalog_fingerprint

        rids = [cls.id for cls in selected] if selected is not None else list(rule_ids())
        cache_path = Path(args.cache if args.cache else DEFAULT_CACHE_PATH)
        cache = LintCache.load(cache_path, catalog_fingerprint(rids))
    try:
        run = lint_project(
            args.paths, rules=selected, jobs=args.jobs, cache=cache, only=only
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings = list(run.findings)
    render = {
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }[args.format]
    print(render(findings))
    if args.stats:
        print(
            f"files {run.files}  linted {run.linted}  cache hits {run.cache_hits}  "
            f"misses {run.cache_misses}  graph modules {run.graph_modules}",
            file=sys.stderr,
        )
    return 1 if findings else 0


def _cmd_bench_list(args: argparse.Namespace) -> int:
    from repro.perf import discover

    try:
        files = discover(args.root)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    header = f"{'module':36s} {'area':11s} {'functions':>9s} {'quick':>5s} {'full':>4s}"
    print(header)
    print("-" * len(header))
    total = quick_total = 0
    for bf in files:
        quick = len(bf.functions_at("quick"))
        print(f"{bf.module:36s} {bf.area:11s} {len(bf.functions):9d} "
              f"{quick:5d} {len(bf.functions) - quick:4d}")
        total += len(bf.functions)
        quick_total += quick
    print(f"\n{len(files)} files, {total} benches ({quick_total} quick-tier)")
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.perf import (
        RunOptions,
        append_run,
        bench_filename,
        load_document,
        run_benches,
        write_document,
    )
    from repro.obs import NULL_TRACER, Tracer
    from repro.perf.report import format_seconds

    tracer = None
    if args.trace_out is not None:
        tracer = Tracer(journal=args.trace_out)
    try:
        opts = RunOptions(
            root=args.root,
            tier=args.tier,
            areas=tuple(args.areas.split(",")) if args.areas else None,
            repeats=args.repeats,
            warmup=args.warmup,
            jobs=args.jobs,
            scale=args.scale,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"Running the {opts.tier} tier at scale={opts.scale} seed={opts.seed} "
        f"({opts.effective_jobs} worker(s), {opts.repeats} repeat(s) "
        f"+ {opts.warmup} warmup)..."
    )
    try:
        result = run_benches(opts, tracer=tracer if tracer is not None else NULL_TRACER)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            tracer.close()
    for area, run in sorted(result.records.items()):
        print(f"\n[{area}] {len(run['benches'])} bench(es):")
        for bench_id, entry in sorted(run["benches"].items()):
            timing = entry.get("timing")
            label = (
                f"{format_seconds(timing['median_s'])} "
                f"±{format_seconds(timing['iqr_s'])}"
                if timing else "(no timing)"
            )
            flag = "" if entry["status"] == "ok" else "  ** FAILED **"
            print(f"  {bench_id:60s} {label}{flag}")
            for name, metric in sorted(entry.get("metrics", {}).items()):
                print(f"    {name} = {metric['value']:.6g} {metric['unit']}".rstrip())
    if not args.dry_run:
        from pathlib import Path

        for area, run in sorted(result.records.items()):
            path = Path(args.out) / bench_filename(area)
            doc = load_document(path) if path.is_file() else None
            write_document(path, append_run(doc, area, run, keep=args.keep))
            print(f"\nwrote {path} ({len(run['benches'])} bench(es) appended)")
    print(
        f"\n{result.files_run} file(s), {result.benches_run} bench(es), "
        f"{result.deselected} deselected, {result.wall_s:.1f}s wall"
    )
    if result.failures:
        print(f"\n{len(result.failures)} failure(s):", file=sys.stderr)
        for failure in result.failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.perf import (
        StoreError,
        Thresholds,
        compare_documents,
        load_document,
        regressions,
        trajectory_files,
    )

    try:
        thresholds = Thresholds(
            time_rel=args.time_tolerance, quality_rel=args.quality_tolerance
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    paths = trajectory_files(args.root)
    if args.areas:
        wanted = set(args.areas.split(","))
        missing = sorted(wanted - set(paths))
        if missing:
            print(
                f"error: no BENCH_<area>.json for area(s): {', '.join(missing)}",
                file=sys.stderr,
            )
            return 2
        paths = {a: p for a, p in paths.items() if a in wanted}
    if not paths:
        print("error: no BENCH_<area>.json trajectories found", file=sys.stderr)
        return 2
    try:
        docs = {area: load_document(path) for area, path in paths.items()}
    except StoreError as exc:
        # schema damage always hard-fails, even under --warn-only: an
        # unreadable baseline must not read as "no regression"
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings, notes = compare_documents(docs, thresholds=thresholds)
    for note in notes:
        print(f"note: {note}")
    shown = [f for f in findings if f.severity != "ok"] if not args.verbose else findings
    for f in shown:
        print(f.format())
    bad = regressions(findings)
    compared = sum(
        1 for f in findings if f.severity in ("ok", "regression", "improvement", "noisy")
    )
    noisy = sum(1 for f in findings if f.severity == "noisy")
    print(
        f"\ncompared {compared} measurement(s) across {len(docs)} area(s): "
        f"{len(bad)} regression(s), "
        f"{sum(1 for f in findings if f.severity == 'improvement')} improvement(s), "
        f"{noisy} noisy drift(s)"
    )
    if bad:
        if args.warn_only:
            print("warn-only: not failing the gate despite regressions", file=sys.stderr)
            return 0
        return 1
    return 0


def _cmd_bench_report(args: argparse.Namespace) -> int:
    from repro.perf import StoreError, load_document, render_markdown, trajectory_files

    paths = trajectory_files(args.root)
    if not paths:
        print("error: no BENCH_<area>.json trajectories found", file=sys.stderr)
        return 2
    try:
        docs = {area: load_document(path) for area, path in paths.items()}
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    text = render_markdown(docs, max_runs=args.max_runs)
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    import itertools

    from repro.cachesim.shared import simulate_partition_sharing
    from repro.workloads.generators import FIGURE1_CACHE_SIZE, figure1_traces

    traces = figure1_traces()
    C = FIGURE1_CACHE_SIZE

    def misses(grouping, sizes):
        r = simulate_partition_sharing(traces, grouping, sizes)
        return int((r.misses + r.cold_misses).sum())

    ffa = misses([[0, 1, 2, 3]], [C])
    best_part = min(
        (misses([[0], [1], [2], [3]], s), s)
        for s in itertools.product(range(1, C + 1), repeat=4)
        if sum(s) == C
    )
    ps = misses([[0], [1], [2, 3]], [1, 1, 4])
    print(f"Figure 1 (cache of {C} blocks, every program keeps >= 1):")
    print(f"  free-for-all sharing      : {ffa} misses")
    print(f"  best strict partitioning  : {best_part[0]} misses {best_part[1]}")
    print(f"  partition-sharing 1/1/{{3,4}}: {ps} misses")
    return 0


def _parse_policy(weights: str | None, slo: str | None, baseline: str, n_tenants: int):
    """Build an :class:`ObjectivePolicy` from CLI flags (None = default).

    ``weights``/``slo`` are comma-separated per-tenant values; a single
    value broadcasts to every tenant; ``-`` or ``none`` in ``slo`` leaves
    that tenant uncapped.  ``baseline`` is a family name or explicit
    comma-separated per-tenant miss-ratio thresholds.
    """
    if weights is None and slo is None and baseline == "none":
        return None
    from repro.core.policy import BASELINE_FAMILIES, ObjectivePolicy

    def _broadcast(vals: list) -> tuple:
        return tuple(vals * n_tenants if len(vals) == 1 else vals)

    w = None
    if weights is not None:
        w = _broadcast([float(tok) for tok in weights.split(",") if tok.strip()])
    caps = None
    if slo is not None:
        caps = _broadcast(
            [
                None if tok.strip().lower() in ("-", "none") else float(tok)
                for tok in slo.split(",")
                if tok.strip()
            ]
        )
    b: str | tuple = baseline
    if baseline not in BASELINE_FAMILIES:
        b = _broadcast([float(tok) for tok in baseline.split(",") if tok.strip()])
    policy = ObjectivePolicy(weights=w, slo_caps=caps, baseline=b)
    policy.check_arity(n_tenants)
    return policy


def _serve_setup(args: argparse.Namespace):
    """Workload + controller config + policy shared by ``serve`` and ``top``."""
    from repro.online.controller import ControllerConfig
    from repro.online.replay import phase_opposed_pair, steady_pair

    if args.workload == "phase-opposed":
        traces, epoch = phase_opposed_pair(loops=args.loops)
    else:
        traces, epoch = steady_pair()
    if args.epoch is not None:
        epoch = args.epoch
    config = ControllerConfig(
        cache_blocks=args.cache_blocks,
        epoch_length=epoch,
        sampling_rate=args.rate,
        drift_threshold=args.drift,
        hysteresis=args.hysteresis,
        quantum=args.quantum,
        max_buffered=args.max_buffer,
        seed=args.seed,
    )
    if args.batch < 1:
        raise ValueError("--batch must be >= 1")
    policy = _parse_policy(args.weights, args.slo, args.baseline, len(traces))
    if policy is not None:
        from repro.online.controller import check_online_policy

        check_online_policy(policy, len(traces))
    return traces, config, policy


def _parse_alert_policy(spec: str | None):
    """``FAST,SLOW`` epoch windows → :class:`AlertPolicy` (None = defaults)."""
    from repro.obs import AlertPolicy

    if spec is None:
        return AlertPolicy()
    toks = [tok.strip() for tok in spec.split(",") if tok.strip()]
    if len(toks) != 2:
        raise ValueError("--alert-windows takes FAST,SLOW epoch counts")
    return AlertPolicy(fast_window=int(toks[0]), slow_window=int(toks[1]))


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.online.replay import replay

    try:
        traces, config, policy = _serve_setup(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    registry = server = tracer = flight = alerts = None
    if args.metrics_port is not None:
        from repro.obs import MetricsServer, Registry

        registry = Registry()
        server = MetricsServer(registry, port=args.metrics_port).start()
        print(f"metrics on {server.url}/metrics (health: {server.url}/healthz)")
    if args.trace_out is not None:
        from repro.obs import Tracer

        tracer = Tracer(journal=args.trace_out)
    if args.flight_out is not None:
        from repro.obs import FlightRecorder

        flight = FlightRecorder(journal=args.flight_out)
    if args.alerts:
        from repro.obs import BurnRateAlerts

        try:
            alert_policy = _parse_alert_policy(args.alert_windows)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        alerts = BurnRateAlerts(
            tuple(t.name for t in traces), policy=alert_policy, flight=flight
        )
    print(
        f"Serving the {args.workload} workload online "
        f"({', '.join(t.name for t in traces)}; cache {args.cache_blocks} blocks, "
        f"sampling {args.rate:.0%}):"
    )
    try:
        report = replay(
            traces,
            config,
            batch_size=args.batch,
            registry=registry,
            tracer=tracer,
            policy=policy,
            flight=flight,
            alerts=alerts,
        )
        print(report.summary())
        if report.alerts is not None:
            firing = sorted(t for t, s in report.alerts.items() if s["active"])
            print(
                f"  burn-rate alerts  {alerts.fired} fired, {alerts.cleared} cleared"
                + (f"; still FIRING: {', '.join(firing)}" if firing else "")
            )
        print("\nPer-epoch decisions:")
        print(f"{'epoch':>5s} {'allocation':>16s} {'solved':>6s} {'moved':>5s} "
              f"{'drift':>8s} {'gain':>8s}")
        for d in report.decisions:
            alloc = "/".join(str(int(a)) for a in d.allocation)
            drift = "   --" if not np.isfinite(d.drift) else f"{d.drift:8.4f}"
            print(f"{d.epoch:5d} {alloc:>16s} {str(d.resolved):>6s} "
                  f"{str(d.moved):>5s} {drift:>8s} {d.predicted_gain:8.4f}")
        if args.metrics_out is not None:
            import json

            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                json.dump(
                    {"metrics": report.metrics, "timeseries": report.timeseries},
                    fh,
                    indent=2,
                )
                fh.write("\n")
            print(f"\nwrote metrics snapshot + epoch time-series to {args.metrics_out}")
        if args.trace_out is not None:
            print(f"wrote span journal to {args.trace_out}")
        if flight is not None:
            flight.close()
            print(f"wrote flight journal to {args.flight_out}")
        if server is not None and args.linger > 0:
            print(f"holding /metrics open for {args.linger:.0f}s (final snapshot)...")
            time.sleep(args.linger)
    finally:
        if server is not None:
            server.stop()
        if tracer is not None:
            tracer.close()
        if flight is not None:
            flight.close()
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs import explain_allocation, explain_resolve, load_journal

    try:
        events = load_journal(args.journal)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.tenant is not None:
            print(explain_allocation(events, args.tenant, args.epoch))
        else:
            print(explain_resolve(events, args.epoch))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.console import ANSI_HOME_CLEAR, render_dashboard
    from repro.online.controller import OnlineController
    from repro.online.replay import stream

    try:
        traces, config, policy = _serve_setup(args)
        alerts = None
        if args.alerts:
            from repro.obs import BurnRateAlerts

            alerts = BurnRateAlerts(
                tuple(t.name for t in traces),
                policy=_parse_alert_policy(args.alert_windows),
            )
        controller = OnlineController(
            len(traces), config, names=tuple(t.name for t in traces),
            policy=policy, alerts=alerts,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        import json

        for _ in stream(traces, controller, batch_size=args.batch):
            pass
        doc = {
            "workload": args.workload,
            "cache_blocks": config.cache_blocks,
            "epoch_length": config.epoch_length,
            "metrics": controller.metrics.snapshot(),
            "timeseries": controller.timeseries.to_dict(),
        }
        if alerts is not None:
            doc["alerts"] = alerts.states()
        json.dump(doc, sys.stdout, indent=2)
        print()
        return 0
    use_ansi = sys.stdout.isatty() and not args.plain
    header = (
        f"repro-cps top — {args.workload} workload, "
        f"cache {config.cache_blocks} blocks, epoch {config.epoch_length} accesses"
    )
    for _ in stream(traces, controller, batch_size=args.batch):
        frame = render_dashboard(
            controller.timeseries,
            controller.metrics.snapshot(),
            cache_blocks=config.cache_blocks,
            alerts=None if alerts is None else alerts.states(),
        )
        if use_ansi:
            sys.stdout.write(f"{ANSI_HOME_CLEAR}{header}\n\n{frame}\n")
        else:
            print(header)
            print()
            print(frame)
            print("-" * 78)
        sys.stdout.flush()
        if args.refresh > 0:
            time.sleep(args.refresh)
    print(f"\nfinished: {controller.metrics.epochs} epochs")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-cps",
        description="Optimal Cache Partition-Sharing (ICPP 2015) reproduction",
    )
    parser.add_argument(
        "--kernel", default=None, metavar="NAME",
        help="min-plus kernel backend for this invocation "
             "(overrides REPRO_KERNEL; see repro.core.kernels)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("searchspace", help="§II solution-space sizes")
    p.add_argument("--units", type=int, default=1024)
    p.set_defaults(func=_cmd_searchspace)

    p = sub.add_parser("optimize", help="six schemes for one co-run group")
    p.add_argument("--programs", default="lbm,mcf,namd,soplex")
    p.add_argument("--cache-blocks", type=int, default=4096)
    p.add_argument("--unit-blocks", type=int, default=16)
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser("study", help="the full §VII sweep (REPRO_SCALE=full for 1024 units)")
    p.add_argument("--jobs", type=int, default=None,
                   help="sweep worker processes (default: REPRO_JOBS or 1)")
    p.add_argument("--trace-out", default=None,
                   help="journal sweep/solver spans to this path as JSONL")
    p.add_argument("--weights", default=None,
                   help="per-program objective weights (suite order), "
                        "comma-separated; one value broadcasts")
    p.add_argument("--slo", default=None,
                   help="per-program miss-ratio SLO caps (suite order), "
                        "comma-separated; '-' or 'none' leaves a program "
                        "uncapped; one value broadcasts")
    p.add_argument("--baseline", default="none",
                   help="baseline constraint: 'none', 'equal', 'natural', or "
                        "explicit per-program thresholds (comma-separated)")
    p.set_defaults(func=_cmd_study)

    p = sub.add_parser("validate", help="§VII-C NPA validation")
    p.add_argument("--cache-blocks", type=int, default=1024)
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("figure1", help="the motivating example")
    p.set_defaults(func=_cmd_figure1)

    p = sub.add_parser("export", help="run the study and write table/figure CSVs")
    p.add_argument("--out", default="results")
    p.add_argument("--jobs", type=int, default=None,
                   help="sweep worker processes (default: REPRO_JOBS or 1)")
    p.set_defaults(func=_cmd_export)

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workload", choices=("phase-opposed", "steady"), default="phase-opposed"
        )
        p.add_argument("--cache-blocks", type=int, default=56)
        p.add_argument("--epoch", type=int, default=None,
                       help="epoch length in accesses (default: the workload's phase)")
        p.add_argument("--rate", type=float, default=1.0, help="spatial sampling rate")
        p.add_argument("--drift", type=float, default=0.0,
                       help="re-solve only when mean-L1 MRC drift exceeds this")
        p.add_argument("--hysteresis", type=float, default=0.0,
                       help="min predicted group-miss-ratio gain to move walls")
        p.add_argument("--quantum", type=float, default=0.0,
                       help="solver-cache fingerprint quantization (miss-ratio units)")
        p.add_argument("--batch", type=int, default=64, help="ingest batch size")
        p.add_argument("--max-buffer", type=int, default=None,
                       help="per-tenant bound on epoch-alignment buffering "
                            "(accesses; raises backpressure beyond it)")
        p.add_argument("--loops", type=int, default=6,
                       help="phase swaps in the phase-opposed workload")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--weights", default=None,
                       help="per-tenant objective weights, comma-separated "
                            "(one value broadcasts to every tenant)")
        p.add_argument("--slo", default=None,
                       help="per-tenant miss-ratio SLO caps, comma-separated "
                            "('-' or 'none' leaves a tenant uncapped; one "
                            "value broadcasts)")
        p.add_argument("--baseline", default="none",
                       help="baseline constraint: 'none', 'equal', or explicit "
                            "per-tenant miss-ratio thresholds (comma-separated)")

    p = sub.add_parser(
        "serve", help="replay a workload through the online allocation service"
    )
    add_workload_args(p)
    p.add_argument("--metrics-port", type=int, default=None,
                   help="expose Prometheus /metrics and /healthz on this port "
                        "while the replay runs (0 picks a free port)")
    p.add_argument("--metrics-out", default=None,
                   help="write the final metrics snapshot and epoch time-series "
                        "to this path as JSON")
    p.add_argument("--trace-out", default=None,
                   help="journal controller/solver spans to this path as JSONL")
    p.add_argument("--flight-out", default=None,
                   help="journal decision provenance (flight-recorder events) "
                        "to this path as JSONL — the input of repro-cps explain")
    p.add_argument("--alerts", action="store_true",
                   help="arm multi-window SLO burn-rate alerting "
                        "(repro_alert_active gauges; needs --slo to fire)")
    p.add_argument("--alert-windows", default=None, metavar="FAST,SLOW",
                   help="burn-rate windows in epochs (default: 5,20)")
    p.add_argument("--linger", type=float, default=0.0,
                   help="keep /metrics up this many seconds after the replay "
                        "so scrapers can collect the final snapshot")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "explain", help="answer why-questions from a flight journal"
    )
    p.add_argument("journal", help="JSONL flight journal (serve --flight-out)")
    p.add_argument("--epoch", type=int, required=True,
                   help="the epoch to narrate")
    p.add_argument("--tenant", default=None,
                   help="narrate this tenant's allocation change "
                        "(default: the epoch's re-solve provenance)")
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser(
        "top", help="live terminal dashboard of the online controller"
    )
    add_workload_args(p)
    p.add_argument("--refresh", type=float, default=0.0,
                   help="pause this many seconds between epoch frames")
    p.add_argument("--plain", action="store_true",
                   help="print frames sequentially instead of redrawing in place")
    p.add_argument("--format", choices=("live", "json"), default="live",
                   help="'json' streams headless and prints one snapshot "
                        "document (metrics, time-series, SLO headroom, alerts)")
    p.add_argument("--alerts", action="store_true",
                   help="arm burn-rate alerting and show the alert panel")
    p.add_argument("--alert-windows", default=None, metavar="FAST,SLOW",
                   help="burn-rate windows in epochs (default: 5,20)")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "lint", help="check the project contracts (repro-lint, rules RL001-RL014)"
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--select", default=None,
                   help="comma-separated rule ids to run (default: all)")
    p.add_argument("--format", choices=("text", "json", "sarif"), default="text",
                   help="report format")
    p.add_argument("--jobs", type=int, default=1,
                   help="lint files in N worker processes (default: 1)")
    p.add_argument("--changed", action="store_true",
                   help="only report files git sees as modified/untracked "
                        "(the import graph still spans all paths)")
    p.add_argument("--cache", nargs="?", const="", default=None, metavar="PATH",
                   help="reuse an incremental lint cache "
                        "(default path: .repro-lint-cache.json)")
    p.add_argument("--stats", action="store_true",
                   help="print cache/graph statistics to stderr")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "bench", help="benchmark runner, perf trajectory, and regression gate"
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    def add_root_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--root", default=".",
                       help="repo root holding benchmarks/ and BENCH_*.json (default: .)")

    b = bench_sub.add_parser("list", help="discovered bench files, areas and tiers")
    add_root_arg(b)
    b.set_defaults(func=_cmd_bench_list)

    b = bench_sub.add_parser(
        "run", help="run a tier in isolated subprocesses and persist BENCH_<area>.json"
    )
    add_root_arg(b)
    b.add_argument("--tier", choices=("quick", "full"), default="quick")
    b.add_argument("--areas", default=None,
                   help="comma-separated areas to run (default: all)")
    b.add_argument("--scale", choices=("default", "smoke", "full"), default="default",
                   help="REPRO_SCALE pinned inside the bench workers")
    b.add_argument("--seed", type=int, default=0,
                   help="REPRO_BENCH_SEED pinned inside the bench workers")
    b.add_argument("--repeats", type=int, default=5,
                   help="timed repeats per bench (median/IQR are persisted)")
    b.add_argument("--warmup", type=int, default=1,
                   help="discarded warmup iterations per bench")
    b.add_argument("--jobs", type=int, default=0,
                   help="concurrent bench-file workers (default: min(4, CPUs))")
    b.add_argument("--out", default=".",
                   help="directory receiving BENCH_<area>.json (default: repo root)")
    b.add_argument("--keep", type=int, default=20,
                   help="runs retained per trajectory file")
    b.add_argument("--dry-run", action="store_true",
                   help="run and print, but do not touch BENCH_*.json")
    b.add_argument("--trace-out", default=None,
                   help="journal runner spans to this path as JSONL")
    b.set_defaults(func=_cmd_bench_run)

    b = bench_sub.add_parser(
        "compare",
        help="diff each trajectory's newest run against its last same-tier/scale run",
    )
    add_root_arg(b)
    b.add_argument("--areas", default=None,
                   help="comma-separated areas to gate (default: every BENCH_*.json)")
    b.add_argument("--time-tolerance", type=float, default=0.30,
                   help="relative timing regression threshold (default: 0.30)")
    b.add_argument("--quality-tolerance", type=float, default=0.02,
                   help="relative quality-metric regression threshold (default: 0.02)")
    b.add_argument("--warn-only", action="store_true",
                   help="report regressions but exit 0 (schema errors still exit 2)")
    b.add_argument("--verbose", action="store_true",
                   help="also print measurements that are within tolerance")
    b.set_defaults(func=_cmd_bench_compare)

    b = bench_sub.add_parser("report", help="render the markdown trajectory table")
    add_root_arg(b)
    b.add_argument("--max-runs", type=int, default=8,
                   help="trajectory columns per area (default: 8)")
    b.add_argument("--out", default=None, help="write to this path instead of stdout")
    b.set_defaults(func=_cmd_bench_report)

    p = sub.add_parser("profile", help="locality summary of catalog programs")
    p.add_argument("--programs", default="lbm,mcf,povray")
    p.add_argument("--cache-blocks", type=int, default=4096)
    p.set_defaults(func=_cmd_profile)

    args = parser.parse_args(argv)
    if args.kernel is not None:
        from repro.core.kernels import set_kernel

        try:
            set_kernel(args.kernel)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
