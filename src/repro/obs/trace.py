"""Span tracing: where the engine's time actually goes.

A :class:`Tracer` records *spans* — named, nested, monotonic-clock
intervals — around the operations worth explaining to an operator:
a ``GroupSolver`` evaluation, a ``FoldCache`` fold, a controller epoch,
one chunk of the parallel §VII-A sweep.  Spans land in a bounded
in-memory ring (old spans age out; memory is O(capacity), never O(run
length)) and, optionally, in a JSONL journal for offline analysis
(``repro-cps serve --trace-out`` / ``study --trace-out``).

Design constraints, in order:

1. **zero cost when off** — the default tracer everywhere is
   :data:`NULL_TRACER`, whose ``span()`` returns one shared no-op
   context manager: no allocation, no clock read, no branch in the
   instrumented hot paths beyond the method call itself;
2. **mergeable** — the parallel sweep's worker processes each run their
   own tracer and ship exported span dicts back with their chunk
   results; :meth:`Tracer.adopt` folds them into the parent trace with
   fresh ids and a ``worker`` tag, so one trace describes the whole run;
3. **flat and greppable** — a span exports as one JSON object per line
   with ``name``/``start``/``end``/``dur_ms``/``id``/``parent``/
   ``attrs``; no schema registry, no proto.

Nesting is tracked per tracer with an explicit stack (the engine is
single-threaded per process; worker processes get their own tracer), so
``parent`` links reconstruct the call tree without any thread-local
magic.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Any, Protocol

__all__ = [
    "Span",
    "SpanLike",
    "Tracer",
    "TracerLike",
    "NullTracer",
    "NULL_TRACER",
]


class SpanLike(Protocol):
    """What instrumented code may do with an open span.

    Both :class:`_ActiveSpan` (recording) and :class:`_NullSpan` (no-op)
    satisfy this structurally; typed callers (the engine) accept any
    tracer through :class:`TracerLike` without caring which one they got.
    """

    def __enter__(self) -> "SpanLike": ...

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None: ...

    def set(self, **attrs: Any) -> None: ...

    def event(self, name: str, **attrs: Any) -> None: ...


class TracerLike(Protocol):
    """The tracer surface library code depends on: just ``span()``."""

    def span(self, name: str, **attrs: Any) -> SpanLike: ...


@dataclass
class Span:
    """One named interval on the monotonic clock, with tree structure."""

    name: str
    start: float
    end: float = 0.0
    span_id: int = 0
    parent_id: int | None = None
    worker: str | None = None
    attrs: dict = field(default_factory=dict)
    events: list = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return max(self.end - self.start, 0.0)

    def to_dict(self) -> dict:
        d = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "dur_ms": self.duration_s * 1e3,
            "id": self.span_id,
            "parent": self.parent_id,
        }
        if self.worker is not None:
            d["worker"] = self.worker
        if self.attrs:
            d["attrs"] = self.attrs
        if self.events:
            d["events"] = self.events
        return d


class _ActiveSpan:
    """Context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self.span)
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc_type is not None:
            self.span.attrs["error"] = getattr(exc_type, "__name__", str(exc_type))
        self._tracer._pop(self.span)

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self.span.attrs.update(attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event inside the span."""
        ev: dict = {"name": name, "t": time.monotonic()}
        if attrs:
            ev.update(attrs)
        self.span.events.append(ev)


class _NullSpan:
    """The shared no-op span: enter/exit/set/event all do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None

    def event(self, name: str, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every ``span()`` is the same shared no-op.

    Library code takes a tracer argument defaulting to
    :data:`NULL_TRACER` and calls it unconditionally; the no-op keeps
    the disabled path free of clock reads and allocations, which is what
    lets the DP and sweep hot loops stay instrumented without a
    measurable throughput cost.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def spans(self) -> tuple[Span, ...]:
        return ()

    def export(self) -> list[dict]:
        return []

    def drain(self) -> list[dict]:
        return []

    def adopt(self, spans: list[dict], *, worker: str | None = None) -> None:
        return None

    def close(self) -> None:
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Recording tracer: bounded ring + optional JSONL journal.

    Parameters
    ----------
    capacity:
        Completed spans kept in memory; older spans age out (the journal,
        if any, keeps everything).
    journal:
        Path (or open text file) receiving one JSON object per completed
        span.  Lines are written on span exit and flushed on
        :meth:`close`, so a crashed run still leaves a usable journal.
    """

    enabled = True

    def __init__(self, *, capacity: int = 4096, journal: str | IO[str] | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._ring: deque[Span] = deque(maxlen=self.capacity)
        self._stack: list[Span] = []
        self._next_id = 1
        self._journal: IO[str] | None
        self._owns_journal = isinstance(journal, str)
        if isinstance(journal, str):
            self._journal = open(journal, "w", encoding="utf-8")
        else:
            self._journal = journal
        self.dropped = 0  # spans aged out of the ring

    # ------------------------------------------------------------- spans
    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a span; use as a context manager around the timed region."""
        s = Span(name=name, start=time.monotonic(), attrs=attrs)
        return _ActiveSpan(self, s)

    def _push(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        if self._stack:
            span.parent_id = self._stack[-1].span_id
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end = time.monotonic()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # out-of-order exit: drop whatever the span orphaned
            while self._stack:
                if self._stack.pop() is span:
                    break
        self._record(span)

    def _record(self, span: Span) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(span)
        if self._journal is not None:
            self._journal.write(json.dumps(span.to_dict()) + "\n")

    # ----------------------------------------------------------- reading
    def spans(self) -> tuple[Span, ...]:
        """Completed spans still in the ring, oldest first."""
        return tuple(self._ring)

    def export(self) -> list[dict]:
        """The ring as JSON-able dicts (the journal line format)."""
        return [s.to_dict() for s in self.spans()]

    def drain(self) -> list[dict]:
        """Export the ring and clear it (worker-to-parent handoff)."""
        out = self.export()
        self._ring.clear()
        return out

    def adopt(self, spans: list[dict], *, worker: str | None = None) -> None:
        """Merge spans exported by another tracer (a sweep worker).

        Ids are remapped into this tracer's id space — parent links
        *within* the adopted batch survive, and the batch is tagged with
        ``worker`` so merged traces stay attributable.
        """
        remap: dict[int, int] = {}
        for d in spans:
            new_id = self._next_id
            self._next_id += 1
            remap[int(d["id"])] = new_id
        for d in spans:
            parent = d.get("parent")
            s = Span(
                name=d["name"],
                start=d["start"],
                end=d["end"],
                span_id=remap[int(d["id"])],
                parent_id=remap.get(int(parent)) if parent is not None else None,
                worker=worker if worker is not None else d.get("worker"),
                attrs=dict(d.get("attrs", {})),
                events=list(d.get("events", [])),
            )
            self._record(s)

    def close(self) -> None:
        """Flush (and, if this tracer opened it, close) the journal."""
        if self._journal is not None:
            self._journal.flush()
            if self._owns_journal:
                self._journal.close()
            self._journal = None
