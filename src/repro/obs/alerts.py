"""Multi-window SLO burn-rate alerting over the epoch time-series.

A single-epoch cap violation is noise; a tenant violating its cap for
most of the last *N* epochs is an incident.  :class:`BurnRateAlerts`
implements the standard multi-window multi-burn-rate scheme over the
controller's epoch stream: per tenant, a **fast** window (reacts within
a few epochs) and a **slow** window (confirms the breach is sustained),
each with its own violation-rate threshold.

State machine, evaluated once per finalized epoch:

* **fire** when the fast-window rate ≥ ``fast_burn`` *and* the
  slow-window rate ≥ ``slow_burn`` — the fast window alone would page on
  one bad epoch, the slow window alone would page minutes late; the
  conjunction is both prompt and sturdy (the two-window trade-off from
  the SRE burn-rate playbook);
* **clear** when the fast-window rate drops below ``fast_burn`` — the
  slow window is deliberately ignored on the way down, so recovery is
  observed at the fast window's latency instead of lingering until old
  violations age out;
* firing needs a full fast window of history — a controller that has
  seen two epochs has no business paging anyone.

Everything is deterministic in the epoch stream: same violations in,
same transitions out, which is what lets the tests (and the CI smoke
job) assert fire/clear exactly.  Transitions are journaled as ``alert``
events on the flight recorder, and :meth:`BurnRateAlerts.register_with`
exposes the state as ``repro_alert_active{tenant=...}`` gauges plus the
live burn ratios for dashboards.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

from repro.obs.flight import NULL_FLIGHT_RECORDER, FlightLike

__all__ = ["AlertPolicy", "BurnRateAlerts"]


@dataclass(frozen=True)
class AlertPolicy:
    """Window lengths (in epochs) and burn-rate thresholds.

    Defaults fire after roughly three consecutive violating epochs
    (3/5 ≥ 0.5 needs epoch five's history) provided at least a quarter
    of the slow window is burning, and clear two clean epochs after the
    breach stops.
    """

    fast_window: int = 5
    slow_window: int = 20
    fast_burn: float = 0.5
    slow_burn: float = 0.25

    def __post_init__(self) -> None:
        if self.fast_window < 1 or self.slow_window < 1:
            raise ValueError("alert windows must be >= 1 epoch")
        if self.fast_window > self.slow_window:
            raise ValueError("fast_window must not exceed slow_window")
        if not 0.0 < self.fast_burn <= 1.0 or not 0.0 < self.slow_burn <= 1.0:
            raise ValueError("burn thresholds must be in (0, 1]")


class BurnRateAlerts:
    """Per-tenant burn-rate alert state over the epoch violation stream."""

    def __init__(
        self,
        names: Sequence[str],
        *,
        policy: AlertPolicy | None = None,
        flight: FlightLike | None = None,
    ) -> None:
        if not names:
            raise ValueError("need at least one tenant")
        self.names = tuple(names)
        self.policy = policy if policy is not None else AlertPolicy()
        self.flight = flight if flight is not None else NULL_FLIGHT_RECORDER
        self._window: dict[str, deque[bool]] = {
            n: deque(maxlen=self.policy.slow_window) for n in self.names
        }
        self._active: dict[str, bool] = {n: False for n in self.names}
        self.fired = 0
        self.cleared = 0

    # ---------------------------------------------------------- updating
    def observe(self, epoch: int, violations: Sequence[bool]) -> list[tuple[str, str]]:
        """Fold one epoch's per-tenant violation flags into the windows.

        Returns the transitions this epoch caused as ``(tenant,
        "fired"|"cleared")`` pairs, already journaled as ``alert``
        flight events.
        """
        if len(violations) != len(self.names):
            raise ValueError(
                f"expected {len(self.names)} violation flags, got {len(violations)}"
            )
        transitions: list[tuple[str, str]] = []
        pol = self.policy
        for name, violated in zip(self.names, violations):
            window = self._window[name]
            window.append(bool(violated))
            fast, slow = self._rates(window)
            if not self._active[name]:
                if (
                    len(window) >= pol.fast_window
                    and fast >= pol.fast_burn
                    and slow >= pol.slow_burn
                ):
                    self._active[name] = True
                    self.fired += 1
                    transitions.append((name, "fired"))
                    self.flight.emit(
                        "alert",
                        epoch=epoch,
                        tenant=name,
                        transition="fired",
                        fast_burn=fast,
                        slow_burn=slow,
                        fast_window=pol.fast_window,
                        slow_window=pol.slow_window,
                    )
            elif fast < pol.fast_burn:
                self._active[name] = False
                self.cleared += 1
                transitions.append((name, "cleared"))
                self.flight.emit(
                    "alert",
                    epoch=epoch,
                    tenant=name,
                    transition="cleared",
                    fast_burn=fast,
                    slow_burn=slow,
                    fast_window=pol.fast_window,
                    slow_window=pol.slow_window,
                )
        return transitions

    def _rates(self, window: deque[bool]) -> tuple[float, float]:
        recent = list(window)[-self.policy.fast_window :]
        fast = sum(recent) / len(recent) if recent else 0.0
        slow = sum(window) / len(window) if window else 0.0
        return fast, slow

    # ----------------------------------------------------------- reading
    @property
    def active(self) -> dict[str, bool]:
        """Current alert state per tenant."""
        return dict(self._active)

    def burn_rates(self, tenant: str) -> tuple[float, float]:
        """Current (fast, slow) violation rates for one tenant."""
        return self._rates(self._window[tenant])

    def states(self) -> dict[str, dict]:
        """JSON-able per-tenant view (dashboards, ``top --format json``)."""
        out: dict[str, dict] = {}
        for name in self.names:
            fast, slow = self._rates(self._window[name])
            out[name] = {
                "active": self._active[name],
                "fast_burn": fast,
                "slow_burn": slow,
                "epochs_observed": len(self._window[name]),
            }
        return out

    def register_with(self, registry, *, prefix: str = "repro"):
        """Expose the alert state on a :class:`~repro.obs.prom.Registry`.

        ``<prefix>_alert_active{tenant=...}`` is 1 while a tenant's
        burn-rate alert is firing; the two burn-ratio gauges carry the
        live window rates, and the transition counters let a scraper
        catch a fire/clear pair that happened between scrapes.  Returns
        the registry for chaining.
        """
        registry.gauge(
            f"{prefix}_alert_active",
            "1 while the tenant's SLO burn-rate alert is firing.",
            labelnames=("tenant",),
        ).set_function(
            lambda: {n: (1 if self._active[n] else 0) for n in self.names}
        )
        registry.gauge(
            f"{prefix}_alert_fast_burn_ratio",
            "Violation rate over the fast alert window.",
            labelnames=("tenant",),
        ).set_function(lambda: {n: self._rates(self._window[n])[0] for n in self.names})
        registry.gauge(
            f"{prefix}_alert_slow_burn_ratio",
            "Violation rate over the slow alert window.",
            labelnames=("tenant",),
        ).set_function(lambda: {n: self._rates(self._window[n])[1] for n in self.names})
        registry.counter(
            f"{prefix}_alerts_fired_total", "Burn-rate alert fire transitions."
        ).set_function(lambda: self.fired)
        registry.counter(
            f"{prefix}_alerts_cleared_total", "Burn-rate alert clear transitions."
        ).set_function(lambda: self.cleared)
        return registry
