"""The scrape endpoint: ``/metrics`` and ``/healthz`` on a stdlib server.

A :class:`MetricsServer` wraps one :class:`~repro.obs.prom.Registry`
behind a daemon-threaded ``http.server`` — no framework, no event loop.
``repro-cps serve --metrics-port`` runs one next to the controller so a
Prometheus scraper (or ``curl``) can watch a live replay; port ``0``
binds an ephemeral port (tests read it back from :attr:`port`).

The handler renders the registry at request time, so callback-backed
metrics (see :meth:`repro.obs.prom._Metric.set_function`) always expose
the live values without any push step in the hot path — the service pays
for observability only when someone is actually looking.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.prom import Registry

__all__ = ["MetricsServer", "CONTENT_TYPE"]

#: Prometheus text exposition format version 0.0.4.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serve a registry's exposition on ``/metrics`` (+ ``/healthz``).

    Parameters
    ----------
    registry:
        The metric registry rendered per scrape.
    port:
        TCP port; ``0`` picks an ephemeral one (see :attr:`port`).
    host:
        Bind address; loopback by default — exposing beyond the host is
        a deployment decision, not a library default.
    """

    def __init__(self, registry: Registry, *, port: int = 0, host: str = "127.0.0.1") -> None:
        self.registry = registry
        self._started = time.monotonic()
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = server.registry.render().encode("utf-8")
                    self._reply(200, CONTENT_TYPE, body)
                elif path == "/healthz":
                    body = json.dumps(
                        {
                            "status": "ok",
                            "uptime_s": round(time.monotonic() - server._started, 3),
                        }
                    ).encode("utf-8")
                    self._reply(200, "application/json", body)
                else:
                    self._reply(404, "text/plain; charset=utf-8", b"not found\n")

            def _reply(self, code: int, ctype: str, body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args) -> None:  # silence per-request noise
                return None

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (useful after requesting an ephemeral one)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
