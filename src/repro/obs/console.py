"""Terminal rendering for ``repro-cps top``.

A pure string renderer: :func:`render_dashboard` turns a controller's
epoch time-series and metrics snapshot into one fixed-width frame —
per-tenant allocation bars, miss-ratio sparklines and lag, then the
service counters (re-solves, cache hit ratio, latency, churn).  The CLI
redraws the frame per epoch; keeping the renderer free of I/O and ANSI
state makes it directly testable and usable in logs.
"""

from __future__ import annotations

from repro.obs.timeseries import EpochTimeSeries

__all__ = ["render_dashboard", "sparkline", "bar"]

_SPARKS = "▁▂▃▄▅▆▇█"
ANSI_HOME_CLEAR = "\x1b[H\x1b[J"


def sparkline(values, *, width: int = 24, lo: float = 0.0, hi: float | None = None) -> str:
    """Last ``width`` values as a unicode sparkline (empty input → '')."""
    vals = [float(v) for v in values][-width:]
    if not vals:
        return ""
    top = max(vals) if hi is None else hi
    span = top - lo
    if span <= 0:
        return _SPARKS[0] * len(vals)
    out = []
    for v in vals:
        frac = min(max((v - lo) / span, 0.0), 1.0)
        out.append(_SPARKS[min(int(frac * len(_SPARKS)), len(_SPARKS) - 1)])
    return "".join(out)


def bar(fraction: float, *, width: int = 20) -> str:
    """A ``[####----]``-style meter for a 0..1 fraction."""
    frac = min(max(float(fraction), 0.0), 1.0)
    filled = int(round(frac * width))
    return "#" * filled + "-" * (width - filled)


def render_dashboard(
    series: EpochTimeSeries,
    snapshot: dict,
    *,
    cache_blocks: int,
    history: int = 24,
    alerts: dict | None = None,
) -> str:
    """One frame of the ``top`` view.

    ``series`` is the controller's epoch ring, ``snapshot`` its
    ``OnlineMetrics.snapshot()``; ``cache_blocks`` scales the allocation
    bars; ``alerts`` (a ``BurnRateAlerts.states()`` dict) adds a
    burn-rate panel naming each tenant's alert state and window rates.
    Returns a plain multi-line string (no ANSI codes — the CLI owns
    screen control).
    """
    rows = series.last(1)
    lines: list[str] = []
    if not rows:
        lines.append("waiting for the first epoch...")
    else:
        row = rows[0]
        lines.append(
            f"epoch {row['epoch']:>4d}   "
            f"{'re-solved' if row['resolved'] else 'drift-skip':>10s}   "
            f"{'walls moved' if row['moved'] else 'walls held':>11s}   "
            f"drift {row['drift']:.4f}" if row["drift"] != float("inf")
            else f"epoch {row['epoch']:>4d}   re-solved   first solve"
        )
        lines.append("")
        headroom = row.get("slo_headroom", [None] * len(series.names))
        show_slo = any(h is not None for h in headroom)
        header = (
            f"{'tenant':>10s} {'alloc':>6s} {'share':22s} "
            f"{'miss ratio':>10s} {'trend (' + str(history) + ' epochs)':24s} {'lag':>7s}"
        )
        if show_slo:
            header += f" {'slo headroom':>12s}"
        lines.append(header)
        for i, name in enumerate(series.names):
            alloc = row["allocation"][i]
            mr = row["miss_ratio"][i]
            lag = row["lag"][i]
            trend = sparkline(series.series("miss_ratio", tenant=i), width=history, hi=1.0)
            line = (
                f"{name:>10.10s} {alloc:6.0f} [{bar(alloc / cache_blocks)}] "
                f"{mr:10.4f} {trend:24s} {lag:7d}"
            )
            if show_slo:
                h = headroom[i]
                line += f" {'-':>12s}" if h is None else f" {h:+12.4f}"
            lines.append(line)
    lines.append("")
    lines.append(
        f"epochs {snapshot['epochs']:>5d}   re-solves {snapshot['resolves']:>5d}   "
        f"drift skips {snapshot['drift_skips']:>5d}   "
        f"cache hits {snapshot['solver_cache_hit_ratio']:6.1%}"
    )
    lines.append(
        f"resolve latency mean {snapshot['resolve_latency_mean_s'] * 1e3:7.2f} ms   "
        f"last {snapshot['resolve_latency_last_s'] * 1e3:7.2f} ms   "
        f"resolve trend {sparkline(series.series('resolve_s'), width=history)}"
    )
    lines.append(
        f"walls moved {snapshot['walls_moved']:>4d}   "
        f"blocks moved {snapshot['blocks_moved']:>6d}   "
        f"hysteresis holds {snapshot['hysteresis_holds']:>4d}   "
        f"sampling {snapshot['effective_sampling_rate']:6.1%}"
    )
    violations = snapshot.get("slo_violations", 0)
    infeasible = snapshot.get("slo_infeasible_epochs", 0)
    if violations or infeasible:
        lines.append(
            f"slo violations {violations:>5d}   "
            f"infeasible epochs {infeasible:>5d}"
        )
    if alerts:
        parts = []
        for name, state in alerts.items():
            label = "FIRING" if state.get("active") else "ok"
            parts.append(
                f"{name} {label:6s} fast {state.get('fast_burn', 0.0):4.0%} "
                f"slow {state.get('slow_burn', 0.0):4.0%}"
            )
        lines.append("burn-rate alerts   " + "   ".join(parts))
    return "\n".join(lines)
