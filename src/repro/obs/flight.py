"""Flight recorder: why every allocation decision was made.

Counters (:mod:`repro.obs.prom`) say how *often* the controller skipped,
re-solved or violated an SLO; spans (:mod:`repro.obs.trace`) say where
the *time* went.  Neither can answer the question an operator actually
asks after an incident: *why did tenant T's allocation change at epoch
E?*  The :class:`FlightRecorder` closes that gap with an append-only,
schema-versioned journal of structured decision events — the inputs of
every verdict, not just its tally:

=================  ========================================================
``drift_verdict``  per-tenant MRC distance vs. the drift threshold, and
                   the reason the epoch re-solved (or did not)
``solve``          solver-cache and warm-start outcome: memo hit, stages
                   reused vs. recomputed, why warm state was unusable
                   (``salt_changed``, ``lattice_changed``, ...)
``policy_swap``    old/new objective fingerprints on ``set_policy()``
``slo``            cap violations (tenant, achieved, cap, headroom) and
                   infeasible→relax degradations
``plan_delta``     per-tenant allocation diff vs. the previous epoch,
                   predicted miss ratios, hysteresis holds
``epoch_finalized``  per-tenant buffer lag, achieved miss ratios,
                   feasibility — the epoch's closing line
``alert``          burn-rate alert transitions (:mod:`repro.obs.alerts`)
``replay_summary`` realized group miss ratios after simulation, closing
                   the predicted-vs-realized loop for a replay run
``truncated``      ring overflow marker: *n* older events were dropped
                   between drains
=================  ========================================================

The mechanics mirror the tracer deliberately: a bounded in-memory ring
(memory is O(capacity), never O(run length)) plus an optional JSONL
journal (one event per line, flushed on :meth:`FlightRecorder.close`);
:meth:`FlightRecorder.drain` exports-and-clears for worker-to-parent
handoff and :meth:`FlightRecorder.adopt` merges drained batches with
per-``pid`` sequence watermarks, so re-adopting an overlapping batch
deduplicates instead of double-counting.  The disabled path is the
shared no-op :data:`NULL_FLIGHT_RECORDER`, exactly like
:data:`~repro.obs.trace.NULL_TRACER`: no allocation, no clock read, no
branch beyond the method call.

Events are consumed by ``repro-cps explain`` (:mod:`repro.obs.explain`),
``scripts/flight_check.py`` in CI, and anything that can read JSONL.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import IO, Any, Iterable, Protocol

__all__ = [
    "FLIGHT_SCHEMA",
    "EVENT_KINDS",
    "FlightEvent",
    "FlightLike",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT_RECORDER",
    "validate_flight_events",
    "load_journal",
]

#: Journal schema version; bumped on any incompatible event-shape change.
FLIGHT_SCHEMA = 1

#: The closed set of event kinds; :meth:`FlightRecorder.emit` rejects
#: anything else so a typo cannot silently fork the schema.
EVENT_KINDS = frozenset(
    {
        "epoch_finalized",
        "drift_verdict",
        "solve",
        "plan_delta",
        "policy_swap",
        "slo",
        "alert",
        "replay_summary",
        "truncated",
    }
)


class FlightLike(Protocol):
    """The recorder surface instrumented code depends on.

    Both :class:`FlightRecorder` and :class:`NullFlightRecorder` satisfy
    this structurally, so typed callers (the engine) take a recorder
    without caring whether it records.
    """

    def emit(
        self,
        kind: str,
        *,
        epoch: int | None = None,
        tenant: str | None = None,
        **data: Any,
    ) -> None: ...

    def set_epoch(self, epoch: int | None) -> None: ...


class FlightEvent:
    """One recorded decision event (the journal line, materialized)."""

    __slots__ = ("kind", "seq", "pid", "t", "epoch", "tenant", "data")

    def __init__(
        self,
        kind: str,
        *,
        seq: int,
        pid: int,
        t: float,
        epoch: int | None = None,
        tenant: str | None = None,
        data: dict[str, Any] | None = None,
    ) -> None:
        self.kind = kind
        self.seq = seq
        self.pid = pid
        self.t = t
        self.epoch = epoch
        self.tenant = tenant
        self.data = data if data is not None else {}

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "schema": FLIGHT_SCHEMA,
            "kind": self.kind,
            "seq": self.seq,
            "pid": self.pid,
            "t": self.t,
        }
        if self.epoch is not None:
            d["epoch"] = self.epoch
        if self.tenant is not None:
            d["tenant"] = self.tenant
        if self.data:
            d["data"] = self.data
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlightEvent({self.kind!r}, seq={self.seq}, pid={self.pid}, "
            f"epoch={self.epoch}, tenant={self.tenant})"
        )


class NullFlightRecorder:
    """The disabled recorder: every method is a no-op.

    Library code takes a ``flight`` argument defaulting to
    :data:`NULL_FLIGHT_RECORDER` and calls it unconditionally; keeping
    the no-op free of clock reads, pid lookups and allocations is what
    lets the solve and epoch hot paths stay instrumented at their
    uninstrumented cost.
    """

    enabled = False

    def emit(
        self,
        kind: str,
        *,
        epoch: int | None = None,
        tenant: str | None = None,
        **data: Any,
    ) -> None:
        return None

    def set_epoch(self, epoch: int | None) -> None:
        return None

    def events(self) -> tuple[FlightEvent, ...]:
        return ()

    def export(self) -> list[dict]:
        return []

    def drain(self) -> list[dict]:
        return []

    def adopt(self, events: list[dict]) -> None:
        return None

    def close(self) -> None:
        return None


NULL_FLIGHT_RECORDER = NullFlightRecorder()


class FlightRecorder:
    """Recording flight recorder: bounded ring + optional JSONL journal.

    Parameters
    ----------
    capacity:
        Events kept in memory; older events age out of the ring (the
        journal, if any, keeps everything) and are announced by a
        ``truncated`` marker on the next :meth:`drain`.
    journal:
        Path (or open text file) receiving one JSON object per event.
        Lines are written at emit time and flushed on :meth:`close`, so
        a crashed run still leaves a usable journal.
    """

    enabled = True

    def __init__(self, *, capacity: int = 4096, journal: str | IO[str] | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._ring: deque[FlightEvent] = deque(maxlen=self.capacity)
        self._next_seq = 0
        self._epoch: int | None = None
        self.pid = os.getpid()
        self._journal: IO[str] | None
        self._owns_journal = isinstance(journal, str)
        if isinstance(journal, str):
            self._journal = open(journal, "w", encoding="utf-8")
        else:
            self._journal = journal
        self.dropped = 0  # events aged out of the ring, ever
        self._drained_dropped = 0  # value of `dropped` at the last drain
        # highest adopted seq per foreign pid: re-adopting an overlapping
        # batch (a worker drained twice into the same parent) must not
        # double-count events
        self._watermarks: dict[int, int] = {}

    # ----------------------------------------------------------- writing
    def set_epoch(self, epoch: int | None) -> None:
        """Set the ambient epoch stamped on events that pass none."""
        self._epoch = epoch

    def emit(
        self,
        kind: str,
        *,
        epoch: int | None = None,
        tenant: str | None = None,
        **data: Any,
    ) -> None:
        """Record one decision event.

        ``epoch`` defaults to the ambient epoch (:meth:`set_epoch`);
        ``data`` must be JSON-serializable — the journal is the contract.
        """
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown flight event kind {kind!r}")
        ev = FlightEvent(
            kind,
            seq=self._next_seq,
            pid=self.pid,
            t=time.monotonic(),
            epoch=epoch if epoch is not None else self._epoch,
            tenant=tenant,
            data=data,
        )
        self._next_seq += 1
        self._record(ev)

    def _record(self, ev: FlightEvent) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(ev)
        if self._journal is not None:
            self._journal.write(json.dumps(ev.to_dict()) + "\n")

    # ----------------------------------------------------------- reading
    def events(self) -> tuple[FlightEvent, ...]:
        """Events still in the ring, oldest first."""
        return tuple(self._ring)

    def export(self) -> list[dict]:
        """The ring as JSON-able dicts (the journal line format)."""
        return [ev.to_dict() for ev in self._ring]

    def drain(self) -> list[dict]:
        """Export the ring and clear it (worker-to-parent handoff).

        If the ring overflowed since the previous drain, the batch ends
        with a ``truncated`` marker carrying the number of events lost —
        a merged journal says *that* history is incomplete, and by how
        much, instead of silently looking complete.
        """
        if self.dropped > self._drained_dropped:
            lost = self.dropped - self._drained_dropped
            if len(self._ring) == self.capacity:
                lost += 1  # appending the marker evicts one more event
            self.emit("truncated", n_dropped=lost)
            self._drained_dropped = self.dropped
        out = self.export()
        self._ring.clear()
        return out

    def adopt(self, events: list[dict]) -> None:
        """Merge a batch drained from another recorder (a worker process).

        Events keep their original ``pid``/``seq``/``t`` — unlike span
        ids there is nothing to remap, the (pid, seq) pair *is* the
        identity — and a per-pid watermark drops duplicates, so adopting
        overlapping drains is idempotent.
        """
        batch = sorted(events, key=lambda d: (int(d["pid"]), int(d["seq"])))
        for d in batch:
            if int(d.get("schema", -1)) != FLIGHT_SCHEMA:
                raise ValueError(
                    f"cannot adopt flight event with schema {d.get('schema')!r} "
                    f"(this recorder speaks schema {FLIGHT_SCHEMA})"
                )
            pid, seq = int(d["pid"]), int(d["seq"])
            if seq <= self._watermarks.get(pid, -1):
                continue
            self._watermarks[pid] = seq
            self._record(
                FlightEvent(
                    str(d["kind"]),
                    seq=seq,
                    pid=pid,
                    t=float(d["t"]),
                    epoch=d.get("epoch"),
                    tenant=d.get("tenant"),
                    data=dict(d.get("data", {})),
                )
            )

    def close(self) -> None:
        """Flush (and, if this recorder opened it, close) the journal."""
        if self._journal is not None:
            self._journal.flush()
            if self._owns_journal:
                self._journal.close()
            self._journal = None


# ---------------------------------------------------------------- checking
def validate_flight_events(events: Iterable[dict]) -> dict[str, int]:
    """Validate journal events; returns per-kind counts.

    The consumer-side contract check shared by the tests and CI's
    ``scripts/flight_check.py``: every event must carry the current
    schema version, a known kind, integer ``seq``/``pid``, a float
    ``t``, and per-``pid`` strictly increasing sequence numbers (the
    append-only guarantee, surviving cross-process merges).  Raises
    ``ValueError`` on the first violation.
    """
    counts: dict[str, int] = {}
    last_seq: dict[int, int] = {}
    for i, d in enumerate(events):
        if not isinstance(d, dict):
            raise ValueError(f"event {i}: not a JSON object")
        if d.get("schema") != FLIGHT_SCHEMA:
            raise ValueError(
                f"event {i}: schema {d.get('schema')!r} != {FLIGHT_SCHEMA}"
            )
        kind = d.get("kind")
        if kind not in EVENT_KINDS:
            raise ValueError(f"event {i}: unknown kind {kind!r}")
        if not isinstance(d.get("seq"), int) or d["seq"] < 0:
            raise ValueError(f"event {i}: bad seq {d.get('seq')!r}")
        if not isinstance(d.get("pid"), int):
            raise ValueError(f"event {i}: bad pid {d.get('pid')!r}")
        if not isinstance(d.get("t"), (int, float)):
            raise ValueError(f"event {i}: bad timestamp {d.get('t')!r}")
        epoch = d.get("epoch")
        if epoch is not None and not isinstance(epoch, int):
            raise ValueError(f"event {i}: bad epoch {epoch!r}")
        tenant = d.get("tenant")
        if tenant is not None and not isinstance(tenant, str):
            raise ValueError(f"event {i}: bad tenant {tenant!r}")
        if "data" in d and not isinstance(d["data"], dict):
            raise ValueError(f"event {i}: data is not an object")
        pid = d["pid"]
        if pid in last_seq and d["seq"] <= last_seq[pid]:
            raise ValueError(
                f"event {i}: seq {d['seq']} not increasing for pid {pid} "
                f"(last {last_seq[pid]}) — duplicate or reordered journal?"
            )
        last_seq[pid] = d["seq"]
        counts[kind] = counts.get(kind, 0) + 1
    return counts


def load_journal(path: str) -> list[dict]:
    """Read and validate a JSONL flight journal; returns its events."""
    events: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from None
    validate_flight_events(events)
    return events
