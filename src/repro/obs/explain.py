"""``repro-cps explain``: causal narratives from a flight journal.

Given the JSONL journal written by ``serve --flight-out`` (or any
:class:`~repro.obs.flight.FlightRecorder`), reconstruct the answer to
the two questions an operator asks of a live allocator:

* :func:`explain_allocation` — *why did tenant T's allocation change at
  epoch E?*  Stitches the epoch's ``drift_verdict`` (which tenant's MRC
  moved, how far past the threshold), ``policy_swap`` (did the objective
  change under it), ``solve`` (memo hit / warm resume / cold fold),
  ``plan_delta`` (the actual diff and predicted gain) and ``slo``
  events into one chronological story;
* :func:`explain_resolve` — *why did epoch E re-solve cold?*  Follows
  the warm-start provenance on the ``solve`` events: whether warm state
  existed, why it was unusable (``salt_changed`` after a policy swap,
  ``lattice_changed`` after a quantum/grid change, ...), and how many
  fold stages were reused vs. recomputed when it wasn't cold after all.

Pure functions over event dicts — the CLI owns I/O and exit codes; the
journal loader/validator lives in :mod:`repro.obs.flight`.
"""

from __future__ import annotations

__all__ = ["explain_allocation", "explain_resolve"]

#: ``solve`` reuse codes → operator-readable causes.
_REUSE_CAUSE = {
    "memo_hit": "the solver cache already held this instance's plan",
    "cold": "warm start was not requested for this solve",
    "no_state": "no warm fold state existed yet — first warm-eligible solve",
    "salt_changed": "the policy salt changed (objective swap re-keys all warm state)",
    "lattice_changed": "the quantization lattice or grid changed since the last solve",
    "tenant_count_changed": "the tenant count changed since the last solve",
    "first_curve_changed": "the first tenant's curve changed (no reusable prefix)",
    "warm": "a prefix of tenant curves was unchanged",
}

#: ``drift_verdict`` reason codes → operator-readable causes.
_VERDICT_CAUSE = {
    "first_solve": "no prior solve existed — the first epoch always solves",
    "policy_changed": "the objective policy changed since the last solve",
    "drift_exceeded": "MRC drift exceeded the threshold",
    "below_threshold": "every tenant's MRC stayed within the drift threshold",
}


def _at_epoch(events: list[dict], epoch: int) -> dict[str, list[dict]]:
    by_kind: dict[str, list[dict]] = {}
    for ev in events:
        if ev.get("epoch") == epoch:
            by_kind.setdefault(ev["kind"], []).append(ev)
    return by_kind


def _epochs_present(events: list[dict]) -> list[int]:
    return sorted(
        {ev["epoch"] for ev in events if isinstance(ev.get("epoch"), int)}
    )


def _require_epoch(events: list[dict], epoch: int) -> dict[str, list[dict]]:
    by_kind = _at_epoch(events, epoch)
    if not by_kind:
        present = _epochs_present(events)
        span = f"{present[0]}..{present[-1]}" if present else "none"
        raise ValueError(f"journal has no events for epoch {epoch} (epochs: {span})")
    return by_kind


def _fmt_solve(ev: dict) -> str:
    d = ev.get("data", {})
    reuse = d.get("reuse", "cold")
    cause = _REUSE_CAUSE.get(reuse, reuse)
    if d.get("cache_hit"):
        return f"solve: cache hit — {_REUSE_CAUSE['memo_hit']}; no fold ran"
    reused = d.get("stages_reused", 0)
    computed = d.get("stages_computed", d.get("n_costs", 0))
    if d.get("warm") and reused > 0:
        return (
            f"solve: warm start resumed the fold — {reused} stage(s) reused, "
            f"{computed} recomputed ({cause})"
        )
    label = "cold fold" if not d.get("warm") else "warm-eligible but fully refolded"
    return f"solve: {label} — all {computed} stage(s) computed ({cause})"


def _drift_line(by_kind: dict[str, list[dict]], tenant: str | None = None) -> list[str]:
    lines: list[str] = []
    for ev in by_kind.get("drift_verdict", []):
        d = ev.get("data", {})
        verdict = d.get("verdict", "?")
        reason = d.get("reason", "?")
        cause = _VERDICT_CAUSE.get(reason, reason)
        threshold = d.get("threshold", 0.0)
        distances = d.get("distances")
        if distances:
            mover = max(distances, key=lambda n: distances[n])
            lines.append(
                f"drift: {'re-solve' if verdict == 'resolve' else 'skip'} — {cause} "
                f"(largest mover {mover!r}: {distances[mover]:.4f} mean-L1 "
                f"vs threshold {threshold:.4f})"
            )
            if tenant is not None and tenant in distances and tenant != mover:
                lines.append(
                    f"drift: tenant {tenant!r} itself moved {distances[tenant]:.4f}"
                )
        else:
            lines.append(f"drift: {'re-solve' if verdict == 'resolve' else 'skip'} — {cause}")
    return lines


def _policy_lines(by_kind: dict[str, list[dict]]) -> list[str]:
    lines = []
    for ev in by_kind.get("policy_swap", []):
        d = ev.get("data", {})
        if d.get("changed"):
            lines.append(
                f"policy: objective swapped {d.get('old', '?')[:12]} -> "
                f"{d.get('new', '?')[:12]} — caches re-salted, next solve forced cold"
            )
        else:
            lines.append("policy: set_policy() called with a value-identical objective (no-op)")
    return lines


def _slo_lines(by_kind: dict[str, list[dict]], tenant: str | None = None) -> list[str]:
    lines = []
    for ev in by_kind.get("slo", []):
        d = ev.get("data", {})
        if d.get("type") == "relax":
            who = ", ".join(repr(t) for t in d.get("tenants", []))
            lines.append(
                f"slo: infeasible caps degraded this epoch to best effort ({who})"
            )
        elif d.get("type") == "violation":
            if tenant is not None and ev.get("tenant") != tenant:
                continue
            lines.append(
                f"slo: tenant {ev.get('tenant')!r} achieved "
                f"{d.get('achieved', 0.0):.4f} vs cap {d.get('cap', 0.0):.4f} "
                f"(headroom {d.get('headroom', 0.0):+.4f}) — violation"
            )
    return lines


def explain_allocation(events: list[dict], tenant: str, epoch: int) -> str:
    """Why did ``tenant``'s allocation change (or hold) at ``epoch``?"""
    by_kind = _require_epoch(events, epoch)
    deltas = by_kind.get("plan_delta")
    if not deltas:
        raise ValueError(f"epoch {epoch} has no plan_delta event in this journal")
    d = deltas[-1].get("data", {})
    alloc = d.get("allocation", {})
    if tenant not in alloc:
        known = ", ".join(repr(n) for n in alloc)
        raise ValueError(f"unknown tenant {tenant!r} (journal tenants: {known})")

    lines = [f"epoch {epoch}, tenant {tenant!r}:"]
    previous = d.get("previous") or {}
    now = int(alloc[tenant])
    if tenant in previous:
        before = int(previous[tenant])
        diff = now - before
        if diff:
            lines.append(
                f"allocation: {before} -> {now} blocks ({diff:+d}) — walls moved"
            )
        elif d.get("moved"):
            lines.append(
                f"allocation: held at {now} blocks while other tenants' walls moved"
            )
        else:
            held = "hysteresis held the standing walls" if d.get("held_by_hysteresis") else (
                "the re-solve reproduced the standing walls" if d.get("resolved")
                else "the epoch was drift-skipped"
            )
            lines.append(f"allocation: held at {now} blocks — {held}")
    else:
        lines.append(f"allocation: first epoch, {now} blocks assigned")
    lines += _drift_line(by_kind, tenant)
    lines += _policy_lines(by_kind)
    lines += [_fmt_solve(ev) for ev in by_kind.get("solve", [])]
    predicted = d.get("predicted_miss_ratio", {})
    if tenant in predicted:
        gain = d.get("predicted_gain", 0.0)
        lines.append(
            f"plan: predicted miss ratio {predicted[tenant]:.4f} for {tenant!r} "
            f"at this allocation (group gain {gain:+.4f} over standing walls)"
        )
    lines += _slo_lines(by_kind, tenant)
    fin = by_kind.get("epoch_finalized")
    if fin:
        fd = fin[-1].get("data", {})
        lag = fd.get("lag", {}).get(tenant)
        if lag is not None:
            lines.append(f"ingest: tenant {tenant!r} buffer lag {int(lag)} accesses at the close")
    return "\n  ".join(lines)


def explain_resolve(events: list[dict], epoch: int) -> str:
    """Why did ``epoch`` re-solve cold (or warm, or not at all)?"""
    by_kind = _require_epoch(events, epoch)
    lines = [f"epoch {epoch}:"]
    verdicts = by_kind.get("drift_verdict", [])
    solves = by_kind.get("solve", [])
    if verdicts and verdicts[-1].get("data", {}).get("verdict") == "skip":
        lines += _drift_line(by_kind)
        lines.append("solve: none ran — the standing allocation was kept at zero cost")
    else:
        lines += _drift_line(by_kind)
        lines += _policy_lines(by_kind)
        if not solves:
            lines.append("solve: no solve event recorded for this epoch")
        for ev in solves:
            lines.append(_fmt_solve(ev))
    lines += _slo_lines(by_kind)
    return "\n  ".join(lines)
