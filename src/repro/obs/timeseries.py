"""Epoch-indexed time-series rings for the online controller.

One-shot snapshots (``OnlineMetrics.snapshot()``) answer "where is the
service now"; operating a live allocator also needs "what has it been
doing" — did the walls oscillate, which tenant's miss ratio spiked when
its lag grew, is resolve latency drifting up as profiles widen.  The
:class:`EpochTimeSeries` records one row per finalized epoch — per-tenant
allocation, miss ratio and lag, plus the epoch's resolve latency, drift
and decision flags — in a bounded ring, so memory is O(capacity · tenants)
no matter how long the service runs.

The ring is the data source for :class:`~repro.online.replay.ReplayReport`
exports, ``repro-cps serve --metrics-out`` JSON dumps, and the
``repro-cps top`` terminal view.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

__all__ = ["EpochTimeSeries"]

#: Per-tenant fields of one epoch row.
TENANT_FIELDS = ("allocation", "miss_ratio", "lag", "slo_headroom")
#: Scalar fields of one epoch row.
EPOCH_FIELDS = ("resolve_s", "drift", "resolved", "moved")


class EpochTimeSeries:
    """Bounded per-epoch history of one controller instance.

    Parameters
    ----------
    names:
        Tenant names; every recorded row carries one value per tenant
        for each of :data:`TENANT_FIELDS`.
    capacity:
        Epoch rows retained; older rows age out.
    """

    def __init__(self, names: Sequence[str], *, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.names = tuple(names)
        self.capacity = int(capacity)
        self._rows: deque[dict] = deque(maxlen=self.capacity)
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._rows)

    # ----------------------------------------------------------- writing
    def record(
        self,
        epoch: int,
        *,
        allocation: Sequence[float],
        miss_ratio: Sequence[float],
        lag: Sequence[int],
        resolve_s: float,
        drift: float,
        resolved: bool,
        moved: bool,
        slo_headroom: Sequence[float | None] | None = None,
    ) -> None:
        """Append one epoch's row (evicting the oldest beyond capacity).

        ``slo_headroom`` holds ``cap - achieved miss ratio`` per tenant
        (``None`` for tenants without a cap); omitted, every tenant is
        recorded as uncapped.
        """
        n = len(self.names)
        if not (len(allocation) == len(miss_ratio) == len(lag) == n):
            raise ValueError(f"per-tenant fields must have {n} entries")
        if slo_headroom is None:
            headroom: list[float | None] = [None] * n
        else:
            if len(slo_headroom) != n:
                raise ValueError(f"per-tenant fields must have {n} entries")
            headroom = [None if h is None else float(h) for h in slo_headroom]
        if len(self._rows) == self.capacity:
            self.dropped += 1
        self._rows.append(
            {
                "epoch": int(epoch),
                "allocation": [float(a) for a in allocation],
                "miss_ratio": [float(m) for m in miss_ratio],
                "lag": [int(v) for v in lag],
                "slo_headroom": headroom,
                "resolve_s": float(resolve_s),
                "drift": float(drift),
                "resolved": bool(resolved),
                "moved": bool(moved),
            }
        )

    # ----------------------------------------------------------- reading
    @property
    def epochs(self) -> np.ndarray:
        """Epoch indices of the retained rows, oldest first."""
        return np.array([r["epoch"] for r in self._rows], dtype=np.int64)

    def series(self, field: str, tenant: str | int | None = None) -> np.ndarray:
        """One field's values across the retained epochs.

        Per-tenant fields (:data:`TENANT_FIELDS`) require ``tenant`` (name
        or index); scalar fields (:data:`EPOCH_FIELDS`) forbid it.
        """
        if field in TENANT_FIELDS:
            if tenant is None:
                raise ValueError(f"field {field!r} is per-tenant; pass tenant=")
            i = self.names.index(tenant) if isinstance(tenant, str) else int(tenant)
            if not 0 <= i < len(self.names):
                raise ValueError(f"tenant index {i} out of range")
            return np.array([r[field][i] for r in self._rows], dtype=np.float64)
        if field in EPOCH_FIELDS:
            if tenant is not None:
                raise ValueError(f"field {field!r} is not per-tenant")
            return np.array([r[field] for r in self._rows], dtype=np.float64)
        raise ValueError(f"unknown field {field!r}")

    def last(self, n: int = 1) -> list[dict]:
        """The most recent ``n`` rows, oldest first (for dashboards)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        rows = list(self._rows)
        return [dict(r) for r in rows[max(len(rows) - n, 0):]]

    def to_dict(self) -> dict:
        """JSON-able export: tenant names, capacity bookkeeping, rows."""
        return {
            "tenants": list(self.names),
            "capacity": self.capacity,
            "dropped": self.dropped,
            "rows": [dict(r) for r in self._rows],
        }
