"""Prometheus text-format exposition, stdlib only.

The service layer exports its counters through the Prometheus exposition
format (text version 0.0.4) — the lingua franca of the systems this
repo's related work operates in (LFOC steers clustering from scraped
per-application cache metrics; Memshare sizes arenas from hit-rate
telemetry).  A real client library is a dependency we don't take; the
subset needed here is small and fully specified:

* :class:`Counter` — monotone; exposition name must end in ``_total``;
* :class:`Gauge` — settable; both support **callback** values
  (``set_function``) so live objects (``OnlineMetrics``, ``FoldCache``)
  stay the single source of truth and the registry reads them at scrape
  time instead of being double-counted into a parallel store;
* :class:`Histogram` — explicit upper-inclusive buckets with cumulative
  counts, ``_sum`` and ``_count`` series; this replaces the bare
  ``Timer`` mean for resolve latency (a mean hides the tail; the paper's
  0.21 s/group figure is only comparable bucket by bucket);
* :class:`Registry` — owns name uniqueness and renders ``/metrics``.

The module also ships :func:`parse_exposition` and
:func:`validate_exposition` — the consumer side — used by the schema
tests and the CI scrape smoke-check, so the format promise is pinned
from both directions.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "LATENCY_BUCKETS",
    "parse_exposition",
    "validate_exposition",
    "check_counters_monotone",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): sub-ms solver-cache hits up through
#: the paper's ~0.21 s/group full-grid DP and stragglers beyond it.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(v: float) -> str:
    if isinstance(v, bool):  # bool is an int subclass; be explicit
        return "1" if v else "0"
    f = float(v)
    if math.isinf(f):
        return "+Inf" if f > 0 else "-Inf"
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _format_labels(pairs: Sequence[tuple[str, str]]) -> str:
    """Render label pairs *in the order given* — the family's declared
    ``labelnames`` order is the canonical one, so callers pass an
    explicit sequence rather than a dict whose insertion order would
    carry the meaning implicitly."""
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + inner + "}"


class _Metric:
    """Shared shape: a named family rendering one ``# TYPE`` block."""

    TYPE = "untyped"

    def __init__(self, name: str, help: str, *, labelnames: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        for ln in labelnames:
            if not _LABEL_RE.match(ln):
                raise ValueError(f"invalid label name {ln!r}")
        self.labelnames = tuple(labelnames)
        self._values: dict[tuple[str, ...], float] = {}
        self._fn: Callable[[], float | Mapping] | None = None
        if not self.labelnames:
            self._values[()] = 0.0

    # -------------------------------------------------------------- data
    def _key(self, labels: Mapping[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[ln]) for ln in self.labelnames)

    def set_function(self, fn: Callable[[], float | Mapping]) -> None:
        """Read the value(s) at scrape time instead of storing them.

        Unlabeled metrics take a ``() -> number`` callback; labeled ones
        a ``() -> {label_value(s): number}`` mapping (keys are a single
        label value, or a tuple matching ``labelnames``).  Series absent
        from one scrape's mapping disappear from the exposition — which
        is exactly how closed tenants stop being scraped.
        """
        self._fn = fn

    def _samples(self) -> list[tuple[tuple[str, ...], float]]:
        if self._fn is None:
            return sorted(self._values.items())
        value = self._fn()
        if isinstance(value, Mapping):
            out = []
            for k, v in value.items():
                key = (str(k),) if not isinstance(k, tuple) else tuple(str(x) for x in k)
                if len(key) != len(self.labelnames):
                    raise ValueError(f"{self.name}: callback key {k!r} arity mismatch")
                out.append((key, float(v)))
            return sorted(out)
        if self.labelnames:
            raise ValueError(f"{self.name}: labeled metric callback must return a mapping")
        return [((), float(value))]

    # --------------------------------------------------------- rendering
    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.TYPE}",
        ]
        for key, value in self._samples():
            labels = list(zip(self.labelnames, key))
            lines.append(f"{self.name}{_format_labels(labels)} {_format_value(value)}")
        return "\n".join(lines)


class Counter(_Metric):
    """Monotone event count.  Exposition names must end in ``_total``."""

    TYPE = "counter"

    def __init__(self, name: str, help: str, *, labelnames: Sequence[str] = ()) -> None:
        if not name.endswith("_total"):
            raise ValueError(f"counter {name!r} must end in '_total'")
        super().__init__(name, help, labelnames=labelnames)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    @property
    def value(self) -> float:
        if self.labelnames or self._fn is not None:
            raise ValueError("value is only defined for plain unlabeled counters")
        return self._values[()]


class Gauge(_Metric):
    """A value that can go either way (backlog, entries, lag)."""

    TYPE = "gauge"

    def set(self, value: float, **labels: str) -> None:
        self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)


class Histogram(_Metric):
    """Explicit-bucket histogram (cumulative, upper-inclusive edges).

    ``observe(v)`` lands ``v`` in every bucket whose upper bound ``le``
    satisfies ``v <= le`` (Prometheus semantics — a value exactly on a
    bucket edge belongs to that bucket), plus the implicit ``+Inf``
    bucket; ``_sum`` and ``_count`` accumulate alongside.
    """

    TYPE = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        *,
        buckets: Iterable[float] = LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        edges = sorted(float(b) for b in buckets)
        if not edges:
            raise ValueError("need at least one bucket")
        if any(not math.isfinite(b) for b in edges):
            raise ValueError("bucket edges must be finite (+Inf is implicit)")
        if len(set(edges)) != len(edges):
            raise ValueError("bucket edges must be distinct")
        self.buckets = tuple(edges)
        self._counts = [0] * (len(edges) + 1)  # non-cumulative; +Inf last
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.buckets, float(value))] += 1
        self.sum += float(value)
        self.count += 1

    def bucket_counts(self) -> tuple[int, ...]:
        """Cumulative counts per edge, ending with the ``+Inf`` total."""
        out, running = [], 0
        for c in self._counts:
            running += c
            out.append(running)
        return tuple(out)

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.TYPE}",
        ]
        cumulative = self.bucket_counts()
        for edge, c in zip(self.buckets, cumulative):
            lines.append(f'{self.name}_bucket{{le="{_format_value(edge)}"}} {c}')
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {cumulative[-1]}')
        lines.append(f"{self.name}_sum {_format_value(self.sum)}")
        lines.append(f"{self.name}_count {self.count}")
        return "\n".join(lines)


class Registry:
    """Name-unique collection of metrics; renders the ``/metrics`` page."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def register(self, metric: _Metric) -> _Metric:
        if metric.name in self._metrics:
            raise ValueError(f"metric {metric.name!r} already registered")
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str, **kw) -> Counter:
        return self.register(Counter(name, help, **kw))  # type: ignore[return-value]

    def gauge(self, name: str, help: str, **kw) -> Gauge:
        return self.register(Gauge(name, help, **kw))  # type: ignore[return-value]

    def histogram(self, name: str, help: str, **kw) -> Histogram:
        return self.register(Histogram(name, help, **kw))  # type: ignore[return-value]

    def get(self, name: str) -> _Metric:
        return self._metrics[name]

    def names(self) -> tuple[str, ...]:
        return tuple(self._metrics)

    def render(self) -> str:
        """The full exposition page (text format 0.0.4, trailing newline).

        Families render in sorted-name order: scrapers don't care, but
        equal registries must expose byte-identical pages regardless of
        the order code paths happened to register their metrics in.
        """
        blocks = [m.render() for _name, m in sorted(self._metrics.items())]
        return "\n".join(blocks) + "\n" if blocks else ""


# ---------------------------------------------------------------------------
# Consumer side: parse + validate, shared by tests and the CI scrape check.
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_exposition(text: str) -> dict[str, dict]:
    """Parse a text-format page into ``{family: {"type", "samples"}}``.

    ``samples`` maps ``(sample_name, labels_tuple)`` to the float value;
    histogram ``_bucket``/``_sum``/``_count`` series fold into their base
    family.  Raises ``ValueError`` on anything malformed — this is a
    validator first and a parser second.
    """
    families: dict[str, dict] = {}
    types: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE comment")
            _, _, name, mtype = parts
            if mtype not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: unknown metric type {mtype!r}")
            types[name] = mtype
            families.setdefault(name, {"type": mtype, "samples": {}})["type"] = mtype
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = m.group("name")
        labels: tuple[tuple[str, str], ...] = ()
        if m.group("labels"):
            labels = tuple(
                (k, v) for k, v in _LABEL_PAIR_RE.findall(m.group("labels"))
            )
        value = _parse_value(m.group("value"))
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                family = base
                break
        fam = families.setdefault(family, {"type": types.get(family, "untyped"), "samples": {}})
        key = (name, labels)
        if key in fam["samples"]:
            raise ValueError(f"line {lineno}: duplicate sample {key}")
        fam["samples"][key] = value
    return families


def validate_exposition(text: str) -> dict[str, dict]:
    """Parse and enforce the format's semantic promises.

    Beyond syntactic validity: counter families end in ``_total`` and are
    non-negative; every histogram's bucket series is cumulative
    non-decreasing, its ``+Inf`` bucket equals ``_count``, and ``_sum``
    is present.  Returns the parsed families for further checks.
    """
    families = parse_exposition(text)
    for name, fam in families.items():
        if fam["type"] == "counter":
            if not name.endswith("_total"):
                raise ValueError(f"counter {name!r} must end in '_total'")
            for key, v in fam["samples"].items():
                if v < 0:
                    raise ValueError(f"counter sample {key} is negative")
        elif fam["type"] == "histogram":
            buckets = sorted(
                (
                    (_parse_value(dict(labels)["le"]), v)
                    for (sname, labels), v in fam["samples"].items()
                    if sname == f"{name}_bucket"
                ),
                key=lambda kv: kv[0],
            )
            if not buckets or buckets[-1][0] != math.inf:
                raise ValueError(f"histogram {name!r} is missing its +Inf bucket")
            counts = [v for _, v in buckets]
            if any(b > a for b, a in zip(counts, counts[1:])):
                raise ValueError(f"histogram {name!r} buckets are not cumulative")
            count = fam["samples"].get((f"{name}_count", ()))
            if count is None or (f"{name}_sum", ()) not in fam["samples"]:
                raise ValueError(f"histogram {name!r} is missing _sum/_count")
            if counts[-1] != count:
                raise ValueError(
                    f"histogram {name!r}: +Inf bucket {counts[-1]} != count {count}"
                )
    return families


def check_counters_monotone(before: dict[str, dict], after: dict[str, dict]) -> None:
    """Assert no counter went backwards between two parsed scrapes."""
    for name, fam in before.items():
        if fam["type"] != "counter" or name not in after:
            continue
        for key, v0 in fam["samples"].items():
            v1 = after[name]["samples"].get(key)
            if v1 is not None and v1 < v0:
                raise ValueError(f"counter {key} went backwards: {v0} -> {v1}")
