"""Unified telemetry: spans, Prometheus exposition, epoch time-series.

The service pipeline (engine → sweep → online controller) is operated
through three complementary views, all dependency-free:

* :mod:`repro.obs.trace` — span tracing: nested, monotonic-clock
  intervals around solves, folds, epochs and sweep chunks; bounded
  in-memory ring + optional JSONL journal; a shared no-op
  :data:`~repro.obs.trace.NULL_TRACER` keeps the disabled hot paths at
  their uninstrumented cost;
* :mod:`repro.obs.prom` — counter/gauge/histogram primitives with
  Prometheus text-format exposition (plus the parser/validator the
  tests and CI scrape-check consume);
* :mod:`repro.obs.timeseries` — per-epoch ring buffers of tenant
  allocation, miss ratio, lag and resolve latency;
* :mod:`repro.obs.server` — the ``/metrics`` + ``/healthz`` endpoint on
  a stdlib ``http.server`` thread (``repro-cps serve --metrics-port``);
* :mod:`repro.obs.console` — the ``repro-cps top`` frame renderer.

The library convention: every instrumentable class takes a ``tracer``
(default :data:`~repro.obs.trace.NULL_TRACER`) and offers a
``register_with(registry)`` that binds its live counters to callback
metrics — observability is opt-in per call site and zero-cost when off.
"""

from repro.obs.prom import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    check_counters_monotone,
    parse_exposition,
    validate_exposition,
)
from repro.obs.server import MetricsServer
from repro.obs.timeseries import EpochTimeSeries
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "LATENCY_BUCKETS",
    "parse_exposition",
    "validate_exposition",
    "check_counters_monotone",
    "MetricsServer",
    "EpochTimeSeries",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]
