"""Unified telemetry: spans, Prometheus exposition, epoch time-series.

The service pipeline (engine → sweep → online controller) is operated
through three complementary views, all dependency-free:

* :mod:`repro.obs.trace` — span tracing: nested, monotonic-clock
  intervals around solves, folds, epochs and sweep chunks; bounded
  in-memory ring + optional JSONL journal; a shared no-op
  :data:`~repro.obs.trace.NULL_TRACER` keeps the disabled hot paths at
  their uninstrumented cost;
* :mod:`repro.obs.prom` — counter/gauge/histogram primitives with
  Prometheus text-format exposition (plus the parser/validator the
  tests and CI scrape-check consume);
* :mod:`repro.obs.timeseries` — per-epoch ring buffers of tenant
  allocation, miss ratio, lag and resolve latency;
* :mod:`repro.obs.flight` — the flight recorder: an append-only,
  schema-versioned journal of structured *decision* events (drift
  verdicts, warm-start outcomes, policy swaps, SLO events, plan deltas)
  with the same bounded-ring + ``drain()``/``adopt()`` discipline as
  the tracer and a shared no-op
  :data:`~repro.obs.flight.NULL_FLIGHT_RECORDER`;
* :mod:`repro.obs.alerts` — multi-window SLO burn-rate alerting over
  the epoch stream (``repro_alert_active`` gauges, ``alert`` flight
  events);
* :mod:`repro.obs.explain` — ``repro-cps explain``: causal narratives
  reconstructed from a flight journal;
* :mod:`repro.obs.server` — the ``/metrics`` + ``/healthz`` endpoint on
  a stdlib ``http.server`` thread (``repro-cps serve --metrics-port``);
* :mod:`repro.obs.console` — the ``repro-cps top`` frame renderer.

The library convention: every instrumentable class takes a ``tracer``
(default :data:`~repro.obs.trace.NULL_TRACER`) and a ``flight``
recorder (default :data:`~repro.obs.flight.NULL_FLIGHT_RECORDER`), and
offers a ``register_with(registry)`` that binds its live counters to
callback metrics — observability is opt-in per call site and zero-cost
when off.  Code outside this package imports flight names from this
facade (lint rule RL011): the facade is the emission API's single front
door.
"""

from repro.obs.alerts import AlertPolicy, BurnRateAlerts
from repro.obs.explain import explain_allocation, explain_resolve
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    NULL_FLIGHT_RECORDER,
    FlightLike,
    FlightRecorder,
    NullFlightRecorder,
    load_journal,
    validate_flight_events,
)
from repro.obs.prom import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    check_counters_monotone,
    parse_exposition,
    validate_exposition,
)
from repro.obs.server import MetricsServer
from repro.obs.timeseries import EpochTimeSeries
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "LATENCY_BUCKETS",
    "parse_exposition",
    "validate_exposition",
    "check_counters_monotone",
    "MetricsServer",
    "EpochTimeSeries",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "FLIGHT_SCHEMA",
    "FlightLike",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT_RECORDER",
    "validate_flight_events",
    "load_journal",
    "AlertPolicy",
    "BurnRateAlerts",
    "explain_allocation",
    "explain_resolve",
]
