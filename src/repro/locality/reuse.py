"""Reuse-time analysis (paper §III).

Definitions follow the Higher Order Theory of Locality (HOTL, Xiang et al.
ASPLOS'13) as restated in the paper:

* a **reuse pair** is two accesses to the same datum with no intervening
  access to that datum;
* the **reuse time** of the pair at positions ``i < j`` (1-based in the
  paper) is ``rt = j - i + 1`` (Eq. 4), i.e. the length of the smallest
  window containing both accesses;
* the **reuse interval** used internally here is ``r = j - i`` so that the
  *gap* of non-access positions strictly between the pair is ``r - 1``.

All functions are vectorized; no per-access Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.trace import Trace

__all__ = [
    "previous_occurrence",
    "batch_previous_positions",
    "reuse_intervals",
    "reuse_time_histogram",
    "first_last_positions",
    "gap_histogram",
    "ReuseProfile",
    "reuse_profile",
]


def _as_blocks(trace: Trace | np.ndarray) -> np.ndarray:
    if isinstance(trace, Trace):
        return trace.blocks
    return np.ascontiguousarray(trace, dtype=np.int64)


def previous_occurrence(trace: Trace | np.ndarray) -> np.ndarray:
    """Index of the previous access to the same block, or -1 for a first access.

    Runs in O(n log n) via a stable argsort (grouping equal ids while
    preserving access order inside each group).
    """
    blocks = _as_blocks(trace)
    n = blocks.size
    prev = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return prev
    order = np.argsort(blocks, kind="stable")
    sorted_blocks = blocks[order]
    same_as_left = np.empty(n, dtype=bool)
    same_as_left[0] = False
    np.equal(sorted_blocks[1:], sorted_blocks[:-1], out=same_as_left[1:])
    # within each id-group, order[] is increasing by position (stable sort),
    # so the left neighbour in the sorted view is the previous occurrence.
    prev[order[same_as_left]] = order[np.flatnonzero(same_as_left) - 1]
    return prev


def batch_previous_positions(
    blocks: np.ndarray,
    positions: np.ndarray,
    last_seen: dict[int, int],
    first_seen: dict[int, int] | None = None,
) -> np.ndarray:
    """Previous global position of each access, carrying state across batches.

    The incremental-update hook behind the streaming profiler
    (:mod:`repro.online.profiler`): ``blocks[i]`` was accessed at global
    stream position ``positions[i]``; the returned array holds the global
    position of the previous access to the same block, or ``-1`` for a
    stream-first access.  ``last_seen`` (block → last global position) is
    updated in place so the next batch continues seamlessly; pass
    ``first_seen`` to also record each block's first global position (the
    prefix-gap input of the footprint formula).

    Reuses within the batch are resolved vectorized (the stable-argsort
    trick of :func:`previous_occurrence`); only the first occurrence of
    each distinct block per batch touches the carry dict, so the Python
    cost is O(distinct blocks per batch), not O(accesses).
    """
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    positions = np.ascontiguousarray(positions, dtype=np.int64)
    if blocks.shape != positions.shape or blocks.ndim != 1:
        raise ValueError("blocks and positions must be 1-D and of equal length")
    k = blocks.size
    prev = np.full(k, -1, dtype=np.int64)
    if k == 0:
        return prev
    order = np.argsort(blocks, kind="stable")
    sorted_blocks = blocks[order]
    same_as_left = np.empty(k, dtype=bool)
    same_as_left[0] = False
    np.equal(sorted_blocks[1:], sorted_blocks[:-1], out=same_as_left[1:])
    prev[order[same_as_left]] = positions[order[np.flatnonzero(same_as_left) - 1]]
    # batch-first occurrences consult (and seed) the carry state
    for i in order[~same_as_left]:
        b = int(blocks[i])
        carried = last_seen.get(b, -1)
        if carried >= 0:
            prev[i] = carried
        elif first_seen is not None:
            first_seen[b] = int(positions[i])
    # batch-last occurrence of each distinct block becomes the new carry
    is_last = np.empty(k, dtype=bool)
    is_last[-1] = True
    np.not_equal(sorted_blocks[1:], sorted_blocks[:-1], out=is_last[:-1])
    for i in order[is_last]:
        last_seen[int(blocks[i])] = int(positions[i])
    return prev


def reuse_intervals(trace: Trace | np.ndarray) -> np.ndarray:
    """Reuse interval ``r = j - i`` for every non-first access (compact array).

    The paper's reuse *time* (Eq. 4) is ``r + 1``.
    """
    blocks = _as_blocks(trace)
    prev = previous_occurrence(blocks)
    idx = np.flatnonzero(prev >= 0)
    return idx - prev[idx]


def reuse_time_histogram(trace: Trace | np.ndarray) -> np.ndarray:
    """Histogram ``freq[rt]`` of paper-style reuse times (Eq. 4 definition).

    ``freq[rt]`` counts reuse pairs whose reuse time is ``rt``; indices 0
    and 1 are always zero (a reuse time is at least 2: the pair occupies a
    window of at least two accesses).
    """
    intervals = reuse_intervals(trace)
    rts = intervals + 1
    size = int(rts.max()) + 1 if rts.size else 2
    return np.bincount(rts, minlength=max(size, 2))


def first_last_positions(trace: Trace | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-datum first and last access positions (0-based), in datum order.

    Returns ``(first, last)`` aligned with ``numpy.unique`` order of ids.
    """
    blocks = _as_blocks(trace)
    if blocks.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    _, inverse = np.unique(blocks, return_inverse=True)
    m = int(inverse.max()) + 1
    positions = np.arange(blocks.size, dtype=np.int64)
    first = np.full(m, np.iinfo(np.int64).max, dtype=np.int64)
    last = np.full(m, -1, dtype=np.int64)
    np.minimum.at(first, inverse, positions)
    np.maximum.at(last, inverse, positions)
    return first, last


def gap_histogram(trace: Trace | np.ndarray) -> np.ndarray:
    """Histogram of *gap* lengths: maximal runs of positions not touching a datum.

    For each datum the trace splits into a prefix gap (before its first
    access), internal gaps (between consecutive accesses, length
    ``r - 1``), and a suffix gap (after its last access).  These gaps are
    exactly what the linear-time footprint formula needs
    (:func:`repro.locality.footprint.average_footprint`): a window avoids a
    datum iff it fits inside one of its gaps.

    Returns ``G`` with ``G[g]`` = number of gaps of length ``g`` (``g >= 1``;
    zero-length gaps are dropped as they never contain a window).
    """
    blocks = _as_blocks(trace)
    n = blocks.size
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    internal = reuse_intervals(blocks) - 1
    first, last = first_last_positions(blocks)
    prefix = first
    suffix = (n - 1) - last
    gaps = np.concatenate([internal, prefix, suffix])
    gaps = gaps[gaps > 0]
    size = int(gaps.max()) + 1 if gaps.size else 1
    return np.bincount(gaps, minlength=size)


@dataclass(frozen=True)
class ReuseProfile:
    """Bundled single-pass reuse statistics of one trace."""

    n: int
    m: int
    reuse_time_hist: np.ndarray
    gap_hist: np.ndarray

    @property
    def n_reuses(self) -> int:
        return int(self.reuse_time_hist.sum())

    @property
    def n_cold(self) -> int:
        """Number of first (compulsory-miss) accesses."""
        return self.m


def reuse_profile(trace: Trace | np.ndarray) -> ReuseProfile:
    """Compute all reuse statistics needed by the footprint analysis."""
    blocks = _as_blocks(trace)
    n = int(blocks.size)
    m = int(np.unique(blocks).size) if n else 0
    return ReuseProfile(
        n=n,
        m=m,
        reuse_time_hist=reuse_time_histogram(blocks),
        gap_hist=gap_histogram(blocks),
    )
