"""HOTL-derived reuse (stack) distances (paper §VIII).

"The HOTL theory can derive the reuse distance, which can be used to
statistically estimate the effect of associativity."  This module closes
that loop: from one average-footprint profile it derives the program's
stack-distance distribution, with no simulation —

An access misses a fully-associative LRU cache of ``c`` blocks iff its
stack distance exceeds ``c``; so the complementary CDF of the distance
distribution *is* the miss-ratio curve:

    P[SD > c] = mr(c)        (per access, steady state)

Feeding the derived distribution into Smith's associativity model
(:mod:`repro.cachesim.associativity`) yields a profile-only prediction of
*set-associative* miss ratios, validated against exact simulation in the
benchmarks.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.locality.footprint import FootprintCurve
from repro.locality.hotl import miss_ratio

__all__ = [
    "implied_stack_distance_ccdf",
    "implied_stack_distance_pmf",
    "predicted_set_assoc_miss_ratio",
]


def implied_stack_distance_ccdf(
    fp: FootprintCurve, max_distance: int
) -> np.ndarray:
    """``ccdf[c] = P[stack distance > c]`` for ``c = 0 .. max_distance``.

    Identically the HOTL miss-ratio curve (Eq. 10), renormalized to be
    non-increasing (measured curves can carry tiny non-monotonic noise).
    """
    sizes = np.arange(max_distance + 1, dtype=np.float64)
    ccdf = np.asarray(miss_ratio(fp, sizes), dtype=np.float64)
    return np.minimum.accumulate(np.clip(ccdf, 0.0, 1.0))


def implied_stack_distance_pmf(
    fp: FootprintCurve, max_distance: int
) -> np.ndarray:
    """``pmf[d] = P[stack distance = d]`` for ``d = 1 .. max_distance``.

    The residual mass ``P[SD > max_distance]`` (accesses that miss even
    at the largest size, e.g. cold-tail traffic) is not included; callers
    treat it as certain misses.
    """
    ccdf = implied_stack_distance_ccdf(fp, max_distance)
    return ccdf[:-1] - ccdf[1:]  # P[SD > d-1] - P[SD > d] = P[SD = d]


def predicted_set_assoc_miss_ratio(
    fp: FootprintCurve, n_sets: int, ways: int, *, tail_factor: int = 8
) -> float:
    """Profile-only set-associative miss ratio: HOTL distances × Smith model.

    No trace replay: the distance distribution comes from the footprint,
    the geometry correction from the binomial set-mapping model.
    Distances are resolved up to ``tail_factor`` × the cache capacity;
    the residual tail is counted as certain misses (it would miss at any
    realistic distance).
    """
    if n_sets < 1 or ways < 1:
        raise ValueError("n_sets and ways must be >= 1")
    capacity = n_sets * ways
    max_d = max(capacity * tail_factor, capacity + 1)
    pmf = implied_stack_distance_pmf(fp, max_d)
    d = np.arange(1, max_d + 1, dtype=np.int64)
    miss_prob = stats.binom.sf(ways - 1, d - 1, 1.0 / n_sets)
    expected = float(np.dot(pmf, miss_prob))
    residual = float(implied_stack_distance_ccdf(fp, max_d)[-1])
    return min(expected + residual, 1.0)
