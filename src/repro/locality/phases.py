"""Phase analysis of traces (paper §VIII, "Random Phase Interaction").

The natural-partition reduction assumes programs interact in their
*average* behaviour; Figure 1 shows what synchronized phases can do to
that assumption.  This module provides the tooling to see and exploit
phase structure:

* :func:`epoch_working_sets` — the distinct-block set per fixed epoch;
* :func:`epoch_profiles` — a per-epoch footprint profile (the input of
  epoch-based repartitioning, :mod:`repro.core.dynamic`);
* :func:`detect_phases` — boundary detection by working-set turnover
  (Jaccard distance between adjacent epochs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.locality.footprint import FootprintCurve, average_footprint
from repro.workloads.trace import Trace

__all__ = ["EpochProfile", "epoch_working_sets", "epoch_profiles", "detect_phases"]


def _epoch_slices(n: int, epoch_length: int) -> list[slice]:
    if epoch_length < 1:
        raise ValueError("epoch_length must be >= 1")
    return [slice(s, min(s + epoch_length, n)) for s in range(0, n, epoch_length)]


def epoch_working_sets(trace: Trace, epoch_length: int) -> list[np.ndarray]:
    """Distinct blocks touched in each epoch (sorted arrays)."""
    blocks = trace.blocks
    return [np.unique(blocks[sl]) for sl in _epoch_slices(blocks.size, epoch_length)]


@dataclass(frozen=True)
class EpochProfile:
    """One epoch's locality profile."""

    index: int
    start: int
    length: int
    footprint: FootprintCurve

    @property
    def working_set_size(self) -> int:
        return self.footprint.m


def epoch_profiles(trace: Trace, epoch_length: int) -> list[EpochProfile]:
    """Per-epoch average footprints (each epoch profiled in isolation).

    The per-epoch footprint is what a phase-aware repartitioner would
    profile online; short epochs trade prediction noise for agility.
    """
    out = []
    for i, sl in enumerate(_epoch_slices(len(trace), epoch_length)):
        sub = Trace(trace.blocks[sl], name=f"{trace.name}@{i}", access_rate=trace.access_rate)
        out.append(
            EpochProfile(
                index=i,
                start=sl.start,
                length=len(sub),
                footprint=average_footprint(sub),
            )
        )
    return out


def detect_phases(
    trace: Trace, epoch_length: int, *, turnover_threshold: float = 0.5
) -> list[int]:
    """Phase boundaries: epoch starts whose working set turned over.

    Adjacent epochs are compared by Jaccard distance of their distinct
    block sets; a distance above ``turnover_threshold`` marks a new
    phase.  Returns the access indices where new phases begin (always
    including 0).
    """
    if not 0.0 <= turnover_threshold <= 1.0:
        raise ValueError("turnover_threshold must be in [0, 1]")
    sets = epoch_working_sets(trace, epoch_length)
    boundaries = [0]
    for i in range(1, len(sets)):
        a, b = sets[i - 1], sets[i]
        inter = np.intersect1d(a, b, assume_unique=True).size
        union = a.size + b.size - inter
        distance = 1.0 - (inter / union if union else 1.0)
        if distance > turnover_threshold:
            boundaries.append(i * epoch_length)
    return boundaries
