"""Average footprint analysis (paper §III, Eq. 5).

The average footprint ``fp(w)`` is the mean number of distinct blocks
accessed over *all* windows of length ``w`` in the trace:

    fp(w) = (1 / (n - w + 1)) * sum_i WSS(i, w)            (Eq. 5)

Computing it directly is O(n^2).  This module implements the linear-time
formula of Xiang et al. (PACT'11), restated through *gaps* (see
:func:`repro.locality.reuse.gap_histogram`):

A window of length ``w`` fails to touch datum ``d`` exactly when it fits
inside one of ``d``'s gaps (a maximal run of positions not accessing
``d``).  A gap of length ``g`` contains ``max(g - w + 1, 0)`` windows of
length ``w``.  Therefore

    sum_i WSS(i, w) = m * (n - w + 1) - sum_over_gaps max(g - w + 1, 0)

and with the gap histogram ``G`` and its suffix sums the whole curve
``fp(1..n)`` falls out in O(n + max_gap) time.

The module also ships a direct sliding-window reference
(:func:`windowed_wss`) used by the test-suite to validate the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.locality.reuse import previous_occurrence, reuse_profile
from repro.workloads.trace import Trace

__all__ = [
    "FootprintCurve",
    "average_footprint",
    "footprint_from_gaps",
    "windowed_wss",
    "wss_curve_direct",
]


@dataclass(frozen=True)
class FootprintCurve:
    """The average footprint function of one program.

    Attributes
    ----------
    values:
        ``values[w] = fp(w)`` for ``w = 0 .. n`` (``values[0] == 0``).
    n:
        Trace length (number of accesses).
    m:
        Number of distinct blocks; ``fp(n) == m``.
    access_rate:
        Accesses per unit time of the profiled program (copied from the
        trace; used by composition, Eq. 9).
    name:
        Program name, for reporting.
    """

    values: np.ndarray
    n: int
    m: int
    access_rate: float = 1.0
    name: str = "trace"

    def __post_init__(self) -> None:
        vals = np.ascontiguousarray(self.values, dtype=np.float64)
        if vals.ndim != 1 or vals.size != self.n + 1:
            raise ValueError("values must have length n + 1")
        vals.setflags(write=False)
        object.__setattr__(self, "values", vals)

    # ------------------------------------------------------------------
    def __call__(self, w: np.ndarray | float) -> np.ndarray | float:
        """Evaluate ``fp`` at (possibly fractional) window lengths.

        Linear interpolation between integer window lengths; clamped to
        ``fp(n) = m`` beyond the trace length (the footprint saturates once
        every datum has been seen).
        """
        w_arr = np.clip(np.asarray(w, dtype=np.float64), 0.0, float(self.n))
        lo = w_arr.astype(np.int64)
        hi = np.minimum(lo + 1, self.n)
        frac = w_arr - lo
        out = self.values[lo] + frac * (self.values[hi] - self.values[lo])
        return float(out) if out.ndim == 0 else out

    def inverse(self, target: np.ndarray | float) -> np.ndarray | float:
        """Fill time ``ft = fp^{-1}`` (Eq. 6): window length reaching a footprint.

        Values above ``m`` are mapped to ``n`` (the footprint never exceeds
        the total working set).  Piecewise-linear inverse of the monotone
        curve.
        """
        target = np.asarray(target, dtype=np.float64)
        # np.interp needs strictly usable x; fp is non-decreasing, possibly
        # with flat segments — take the earliest window achieving the target.
        w = np.searchsorted(self.values, target, side="left").astype(np.float64)
        w = np.minimum(w, self.n)
        lo = np.maximum(w.astype(np.int64) - 1, 0)
        hi = lo + 1
        f_lo = self.values[lo]
        f_hi = self.values[np.minimum(hi, self.n)]
        run = f_hi - f_lo
        frac = np.where(run > 0, (target - f_lo) / np.where(run > 0, run, 1.0), 0.0)
        exact = np.clip(lo + frac, 0.0, float(self.n))
        out = np.where(target <= 0, 0.0, np.where(target >= self.m, float(self.n), exact))
        return float(out) if out.ndim == 0 else out

    @property
    def saturated(self) -> float:
        """``fp(n) = m``, the total working-set size."""
        return float(self.values[-1])


def footprint_from_gaps(
    gap_hist: np.ndarray, n: int, m: float, *, max_window: int | None = None
) -> np.ndarray:
    """Average footprint ``fp(0..w_max)`` from a gap histogram (the Eq. 5 kernel).

    This is the closed form shared by the offline full-trace path
    (:func:`average_footprint`) and the online streaming profiler
    (:mod:`repro.online.profiler`), whose histogram is scaled up from a
    spatial sample — hence fractional counts and a fractional ``m`` are
    accepted.  ``max_window`` truncates the curve (a snapshot only needs
    windows up to the cache fill time, not the whole stream length).
    """
    w_max = int(n if max_window is None else min(max_window, n))
    values = np.zeros(w_max + 1, dtype=np.float64)
    if n == 0 or w_max == 0:
        return values
    gap_hist = np.asarray(gap_hist, dtype=np.float64)
    max_gap = gap_hist.size - 1
    # suffix sums over the gap histogram:
    #   S1(w) = sum_{g >= w} G[g]          (number of gaps at least w long)
    #   S2(w) = sum_{g >= w} g * G[g]
    # then T(w) = sum_g G[g] * max(g - w + 1, 0) = S2(w) - (w - 1) * S1(w).
    s1 = np.zeros(n + 2, dtype=np.float64)
    s2 = np.zeros(n + 2, dtype=np.float64)
    upto = min(max_gap, n)
    if upto >= 1:
        counts = np.zeros(n + 1, dtype=np.float64)
        weights = np.zeros(n + 1, dtype=np.float64)
        counts[1 : upto + 1] = gap_hist[1 : upto + 1]
        weights[1 : upto + 1] = gap_hist[1 : upto + 1] * np.arange(1, upto + 1)
        s1[:-1] = np.cumsum(counts[::-1])[::-1]
        s2[:-1] = np.cumsum(weights[::-1])[::-1]

    w = np.arange(1, w_max + 1, dtype=np.float64)
    avoiding = s2[1 : w_max + 1] - (w - 1.0) * s1[1 : w_max + 1]
    windows = n - w + 1.0
    values[1:] = m - avoiding / windows
    return values


def average_footprint(trace: Trace | np.ndarray, name: str | None = None) -> FootprintCurve:
    """Linear-time average footprint of a trace (Eq. 5 via the gap formula)."""
    profile = reuse_profile(trace)
    n, m = profile.n, profile.m
    rate = trace.access_rate if isinstance(trace, Trace) else 1.0
    if name is None:
        name = trace.name if isinstance(trace, Trace) else "trace"
    if n == 0:
        return FootprintCurve(np.zeros(1), n=0, m=0, access_rate=rate, name=name)
    values = footprint_from_gaps(profile.gap_hist, n, m)
    return FootprintCurve(values, n=n, m=m, access_rate=rate, name=name)


def windowed_wss(trace: Trace | np.ndarray, w: int) -> np.ndarray:
    """Distinct-block count ``WSS(i, w)`` for every window of length ``w``.

    O(n) sliding-window computation used as the ground-truth reference in
    tests.  An element at position ``i`` is *new* in the window starting at
    ``s`` iff its previous occurrence is before ``s``; summing the new
    elements per window with a difference array gives all counts at once.
    """
    blocks = trace.blocks if isinstance(trace, Trace) else np.ascontiguousarray(trace, np.int64)
    n = blocks.size
    if not 1 <= w <= n:
        raise ValueError(f"window length must be in [1, {n}], got {w}")
    prev = previous_occurrence(blocks)
    # position i is counted in window s iff s in (prev[i], i] and s in
    # [i - w + 1, i]  =>  s in [max(prev[i] + 1, i - w + 1), i].
    i = np.arange(n, dtype=np.int64)
    lo = np.maximum(prev + 1, i - w + 1)
    hi = np.minimum(i, n - w)  # windows start at 0 .. n - w
    valid = lo <= hi
    diff = np.zeros(n - w + 2, dtype=np.int64)
    np.add.at(diff, lo[valid], 1)
    np.add.at(diff, hi[valid] + 1, -1)
    return np.cumsum(diff[:-1])


def wss_curve_direct(trace: Trace | np.ndarray) -> np.ndarray:
    """Reference O(n^2) average footprint: ``fp[w]`` for ``w = 0..n``.

    Only for testing on small traces.
    """
    blocks = trace.blocks if isinstance(trace, Trace) else np.ascontiguousarray(trace, np.int64)
    n = blocks.size
    out = np.zeros(n + 1, dtype=np.float64)
    for w in range(1, n + 1):
        out[w] = windowed_wss(blocks, w).mean()
    return out
