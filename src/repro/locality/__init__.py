"""Locality substrate: HOTL metrics (paper §III).

Reuse times → gaps → average footprint → fill time / inter-miss time /
miss ratio, plus the :class:`~repro.locality.mrc.MissRatioCurve` consumed by
every optimizer in :mod:`repro.core`.
"""

from repro.locality.derived import (
    implied_stack_distance_ccdf,
    implied_stack_distance_pmf,
    predicted_set_assoc_miss_ratio,
)
from repro.locality.footprint import (
    FootprintCurve,
    average_footprint,
    footprint_from_gaps,
    windowed_wss,
)
from repro.locality.hotl import fill_time, inter_miss_time, miss_ratio
from repro.locality.mrc import MissRatioCurve, mrc_from_trace
from repro.locality.phases import (
    EpochProfile,
    detect_phases,
    epoch_profiles,
    epoch_working_sets,
)
from repro.locality.reuse import (
    ReuseProfile,
    batch_previous_positions,
    first_last_positions,
    gap_histogram,
    previous_occurrence,
    reuse_intervals,
    reuse_profile,
    reuse_time_histogram,
)
from repro.locality.sampling import bursty_footprint, sample_bursts

__all__ = [
    "implied_stack_distance_ccdf",
    "implied_stack_distance_pmf",
    "predicted_set_assoc_miss_ratio",
    "FootprintCurve",
    "average_footprint",
    "footprint_from_gaps",
    "windowed_wss",
    "fill_time",
    "inter_miss_time",
    "miss_ratio",
    "MissRatioCurve",
    "mrc_from_trace",
    "EpochProfile",
    "detect_phases",
    "epoch_profiles",
    "epoch_working_sets",
    "bursty_footprint",
    "sample_bursts",
    "ReuseProfile",
    "batch_previous_positions",
    "first_last_positions",
    "gap_histogram",
    "previous_occurrence",
    "reuse_intervals",
    "reuse_profile",
    "reuse_time_histogram",
]
