"""HOTL metric conversions (paper §III, Eqs. 6–8 and 10).

Starting from the average footprint ``fp`` the higher-order theory of
locality derives, for a fully-associative LRU cache of size ``c`` blocks:

* fill time        ``ft(c) = fp^{-1}(c)``                  (Eq. 6)
* inter-miss time  ``im(c) = ft(c + 1) - ft(c)``           (Eq. 7)
* miss ratio       ``mr(c) = 1 / im(c)``                   (Eq. 8)

which collapses (for the piecewise-linear measured curve) to the form the
paper uses directly:

* ``mr(c) = fp(w + 1) - c``  where ``w`` satisfies ``fp(w) = c``  (Eq. 10)

The derived miss ratio is the *steady-state capacity* miss ratio: cold
(compulsory) misses are excluded, matching the paper's slowdown-free model.
"""

from __future__ import annotations

import numpy as np

from repro.locality.footprint import FootprintCurve

__all__ = ["fill_time", "inter_miss_time", "miss_ratio"]


def fill_time(fp: FootprintCurve, c: np.ndarray | float) -> np.ndarray | float:
    """Expected number of accesses to touch ``c`` distinct blocks (Eq. 6)."""
    return fp.inverse(c)


def inter_miss_time(fp: FootprintCurve, c: np.ndarray | float) -> np.ndarray | float:
    """Average accesses between consecutive misses at cache size ``c`` (Eq. 7).

    Infinite once the cache holds the whole working set (``c >= m``).
    """
    c = np.asarray(c, dtype=np.float64)
    ft_c = np.asarray(fp.inverse(c), dtype=np.float64)
    ft_c1 = np.asarray(fp.inverse(c + 1.0), dtype=np.float64)
    gap = ft_c1 - ft_c
    out = np.where(c >= fp.m, np.inf, np.where(gap > 0, gap, np.inf))
    return float(out) if out.ndim == 0 else out


def miss_ratio(fp: FootprintCurve, c: np.ndarray | float) -> np.ndarray | float:
    """Steady-state miss ratio at cache size ``c`` blocks (Eqs. 8 and 10).

    Implemented as Eq. 10: ``mr(c) = fp(w + 1) - c`` with ``fp(w) = c``,
    clipped to ``[0, 1]``.  Zero once ``c >= m``.
    """
    c_arr = np.asarray(c, dtype=np.float64)
    w = np.asarray(fp.inverse(c_arr), dtype=np.float64)
    mr = np.asarray(fp(w + 1.0), dtype=np.float64) - c_arr
    mr = np.clip(mr, 0.0, 1.0)
    out = np.where(c_arr >= fp.m, 0.0, mr)
    return float(out) if out.ndim == 0 else out
