"""Bursty footprint sampling (§VII-A's practicality discussion).

"Xiang et al. reported on average 23 times slowdown from the full-trace
footprint analysis.  Wang et al. developed a sampling method called
adaptive bursty footprint (ABF) profiling, which takes on average 0.09
second per program."  The paper itself uses full-trace profiling for
reproducibility; this module supplies the sampled alternative so the
accuracy/cost trade-off can be measured in-repo:

* the profiler observes the trace in periodic *bursts* (windows of
  ``burst_length`` accesses, one per ``period``);
* each burst yields an average-footprint curve; bursts are averaged,
  weighting by their window populations;
* the result estimates ``fp(w)`` for ``w`` up to the burst length —
  enough to cover cache-sized windows when bursts are sized to the
  target cache (fill times beyond the burst are extrapolated linearly).

The estimate plugs into everything downstream (miss-ratio curves,
composition, the DP) exactly like a full-trace footprint.
"""

from __future__ import annotations

import numpy as np

from repro.locality.footprint import FootprintCurve, average_footprint
from repro.workloads.trace import Trace

__all__ = ["sample_bursts", "bursty_footprint"]


def sample_bursts(
    trace: Trace, burst_length: int, period: int, *, offset: int = 0
) -> list[Trace]:
    """Cut the trace into periodic observation bursts.

    One burst of ``burst_length`` accesses starts every ``period``
    accesses (``period >= burst_length``); a final partial burst is kept
    if it spans at least half a burst.
    """
    if burst_length < 1:
        raise ValueError("burst_length must be >= 1")
    if period < burst_length:
        raise ValueError("period must be >= burst_length")
    if not 0 <= offset < period:
        raise ValueError("offset must lie within one period")
    n = len(trace)
    bursts = []
    start = offset
    while start < n:
        chunk = trace.blocks[start : start + burst_length]
        if chunk.size >= max(burst_length // 2, 1):
            bursts.append(Trace(chunk, name=trace.name, access_rate=trace.access_rate))
        start += period
    return bursts


def bursty_footprint(
    trace: Trace,
    burst_length: int,
    period: int,
    *,
    offset: int = 0,
) -> FootprintCurve:
    """Estimate the average footprint from periodic bursts.

    The per-window-length averages of all bursts are combined, each
    weighted by its window count, which is exactly the estimator the
    full-trace analysis would produce if it could only see the bursts.
    The curve is returned over ``w = 0 .. burst_length``; its ``n`` is the
    burst length and ``m`` the largest observed burst working set, so
    downstream consumers treat it like a (shorter) full profile.
    """
    bursts = sample_bursts(trace, burst_length, period, offset=offset)
    if not bursts:
        raise ValueError("trace too short for the requested burst schedule")
    w_max = min(burst_length, max(len(b) for b in bursts))
    sums = np.zeros(w_max + 1, dtype=np.float64)
    counts = np.zeros(w_max + 1, dtype=np.float64)
    for burst in bursts:
        fp = average_footprint(burst)
        upto = min(fp.n, w_max)
        w = np.arange(1, upto + 1)
        windows = burst.blocks.size - w + 1  # windows per length in this burst
        sums[1 : upto + 1] += fp.values[1 : upto + 1] * windows
        counts[1 : upto + 1] += windows
    values = np.zeros(w_max + 1, dtype=np.float64)
    nonzero = counts > 0
    values[nonzero] = sums[nonzero] / counts[nonzero]
    # enforce monotonicity (averaging bursts of different lengths can
    # introduce sub-sample dents)
    values = np.maximum.accumulate(values)
    m = int(round(values[-1]))
    return FootprintCurve(
        values,
        n=w_max,
        m=max(m, 1),
        access_rate=trace.access_rate,
        name=f"{trace.name}~abf",
    )
