"""Miss-ratio curves: the per-program input of every optimizer.

A :class:`MissRatioCurve` stores ``mr(c)`` on the dense grid of cache sizes
``c = 0 .. capacity`` (in blocks), together with the access count so the DP
can work in *miss counts* ``mc(c) = mr(c) * n`` (Eq. 15 uses miss counts so
that programs of different lengths are weighted correctly).

Two construction paths:

* :func:`MissRatioCurve.from_footprint` — the HOTL path (Eq. 10), used by
  the paper for all 16 programs;
* :func:`MissRatioCurve.from_stack_distances` — exact LRU simulation via
  stack distances, used to validate the HOTL path (§VII-C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.locality.footprint import FootprintCurve, average_footprint
from repro.locality.hotl import miss_ratio
from repro.workloads.trace import Trace

__all__ = ["MissRatioCurve", "mrc_from_trace"]


@dataclass(frozen=True)
class MissRatioCurve:
    """Miss ratio as a function of cache size, plus program metadata.

    Attributes
    ----------
    ratios:
        ``ratios[c] = mr(c)`` for ``c = 0 .. capacity`` (blocks).
    n_accesses:
        Trace length used to turn ratios into counts.
    name:
        Program name.
    access_rate:
        Solo-run access rate (for composition / natural partition).
    data_size:
        Distinct blocks of the program (``mr(c) == 0`` for ``c >= data_size``
        in the HOTL steady-state model).
    """

    ratios: np.ndarray
    n_accesses: int
    name: str = "program"
    access_rate: float = 1.0
    data_size: int = 0

    def __post_init__(self) -> None:
        arr = np.ascontiguousarray(self.ratios, dtype=np.float64)
        if arr.ndim != 1 or arr.size < 2:
            raise ValueError("ratios must be a 1-D array over sizes 0..capacity")
        if np.any(arr < -1e-12) or np.any(arr > 1 + 1e-12):
            raise ValueError("miss ratios must lie in [0, 1]")
        if self.n_accesses <= 0:
            raise ValueError("n_accesses must be positive")
        arr = np.clip(arr, 0.0, 1.0)
        arr.setflags(write=False)
        object.__setattr__(self, "ratios", arr)

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Largest cache size (blocks) on the grid."""
        return int(self.ratios.size - 1)

    def at(self, c: np.ndarray | float) -> np.ndarray | float:
        """Miss ratio at (fractional) cache size ``c``, linear interpolation."""
        grid = np.arange(self.ratios.size, dtype=np.float64)
        return np.interp(c, grid, self.ratios)

    def miss_counts(self) -> np.ndarray:
        """``mc(c) = mr(c) * n`` over the whole grid (Eq. 15 cost input)."""
        return self.ratios * float(self.n_accesses)

    # ------------------------------------------------------------------
    def resample(self, unit: int, n_units: int | None = None) -> "MissRatioCurve":
        """Coarsen to allocation units of ``unit`` blocks.

        Returns a curve whose index ``k`` is the miss ratio at ``k * unit``
        blocks (the paper partitions 8 MB into 1024 units of 8 KB).
        """
        if unit < 1:
            raise ValueError("unit must be >= 1")
        if n_units is None:
            n_units = self.capacity // unit
        sizes = np.arange(n_units + 1, dtype=np.int64) * unit
        if sizes[-1] > self.capacity:
            raise ValueError(
                f"resample grid ({sizes[-1]} blocks) exceeds curve capacity {self.capacity}"
            )
        return MissRatioCurve(
            self.ratios[sizes],
            n_accesses=self.n_accesses,
            name=self.name,
            access_rate=self.access_rate,
            data_size=self.data_size,
        )

    # ------------------------------------------------------------------
    def convexity_violations(self, tol: float = 1e-12) -> int:
        """Number of grid points where the curve is locally non-convex.

        STTW's optimality (Eq. 13/14) requires a convex decreasing curve;
        this counts where the forward-difference of ``mr`` *increases*
        (second difference below ``-tol``), i.e. a drop-off after a
        plateau.  Measured curves carry sampling noise, so censuses should
        pass a material tolerance (e.g. ``1e-3``) to count only real
        cliffs.
        """
        d = np.diff(self.ratios)
        dd = np.diff(d)
        return int(np.sum(dd < -max(tol, 0.0)))

    def is_convex(self, tol: float = 1e-12) -> bool:
        """Whether the curve is convex up to ``tol`` (see convexity_violations)."""
        return self.convexity_violations(tol) == 0

    def monotone_envelope(self) -> "MissRatioCurve":
        """Largest non-increasing curve below ``mr`` (LRU inclusion holds)."""
        env = np.minimum.accumulate(self.ratios)
        return MissRatioCurve(
            env,
            n_accesses=self.n_accesses,
            name=self.name,
            access_rate=self.access_rate,
            data_size=self.data_size,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_footprint(
        cls, fp: FootprintCurve, capacity: int, n_accesses: int | None = None
    ) -> "MissRatioCurve":
        """HOTL miss-ratio curve on sizes ``0..capacity`` blocks (Eq. 10)."""
        sizes = np.arange(capacity + 1, dtype=np.float64)
        ratios = np.asarray(miss_ratio(fp, sizes), dtype=np.float64)
        return cls(
            ratios,
            n_accesses=int(n_accesses if n_accesses is not None else fp.n),
            name=fp.name,
            access_rate=fp.access_rate,
            data_size=fp.m,
        )

    @classmethod
    def from_stack_distances(
        cls,
        distances: np.ndarray,
        capacity: int,
        n_accesses: int,
        *,
        name: str = "program",
        access_rate: float = 1.0,
        include_cold: bool = False,
        data_size: int = 0,
    ) -> "MissRatioCurve":
        """Exact fully-associative LRU curve from stack distances.

        ``distances`` holds, per *reuse* access, the LRU stack distance
        (number of distinct blocks touched since the previous access to the
        same block, that access included).  An access hits in a cache of
        ``c`` blocks iff its distance is ``<= c``.  First accesses are cold
        misses, included only when ``include_cold`` is set (the HOTL model
        excludes them).
        """
        distances = np.asarray(distances, dtype=np.int64)
        hist = np.bincount(
            np.clip(distances, 0, capacity + 1), minlength=capacity + 2
        )
        # misses(c) = reuses with distance > c (+ cold misses if requested)
        reuse_ge = np.cumsum(hist[::-1])[::-1]  # reuse_ge[d] = #distances >= d
        sizes = np.arange(capacity + 1)
        misses = reuse_ge[np.minimum(sizes + 1, capacity + 1)].astype(np.float64)
        if include_cold:
            misses += float(data_size)
        ratios = misses / float(n_accesses)
        return cls(
            np.clip(ratios, 0.0, 1.0),
            n_accesses=n_accesses,
            name=name,
            access_rate=access_rate,
            data_size=data_size,
        )


def mrc_from_trace(trace: Trace, capacity: int) -> MissRatioCurve:
    """One-call HOTL pipeline: trace → footprint → miss-ratio curve."""
    fp = average_footprint(trace)
    return MissRatioCurve.from_footprint(fp, capacity=capacity)
